#include "recovery/recovery.h"

#include <algorithm>
#include <cstring>
#include <memory>

#include "common/check.h"
#include "recovery/checkpoint.h"

namespace sheap {

Status RecoveryManager::FindStartingCheckpoint(CheckpointData* data,
                                               Lsn* start_lsn,
                                               bool* have_checkpoint,
                                               Result* result) {
  *have_checkpoint = false;
  *start_lsn = d_.device->truncated_prefix() + 1;
  const Lsn master = d_.device->master_lsn();
  LogReader reader(d_.device);
  if (master != kInvalidLsn && master > d_.device->truncated_prefix()) {
    LogRecord rec;
    Status st = reader.ReadAt(master, &rec);
    if (st.ok() && rec.type == RecordType::kCheckpoint) {
      st = DecodeCheckpointPayload(rec.payload, d_.spaces, d_.utt, d_.types,
                                   data);
      if (st.ok()) {
        *have_checkpoint = true;
        *start_lsn = master;
        result->stats.used_master_checkpoint = true;
        return Status::OK();
      }
    }
    // Master stale or checkpoint torn: fall through to a scan.
  }
  // Scan the whole retained log for the last intact checkpoint.
  Lsn best = kInvalidLsn;
  LogRecord rec;
  SHEAP_RETURN_IF_ERROR(reader.Seek(d_.device->truncated_prefix() + 1));
  while (true) {
    auto more = reader.Next(&rec);
    SHEAP_RETURN_IF_ERROR(more.status());
    if (!*more) break;
    if (rec.type == RecordType::kCheckpoint) best = rec.lsn;
  }
  if (best != kInvalidLsn) {
    LogRecord ckpt;
    SHEAP_RETURN_IF_ERROR(reader.ReadAt(best, &ckpt));
    SHEAP_RETURN_IF_ERROR(DecodeCheckpointPayload(ckpt.payload, d_.spaces,
                                                  d_.utt, d_.types, data));
    *have_checkpoint = true;
    *start_lsn = best;
  }
  return Status::OK();
}

Status RecoveryManager::Analysis(Lsn start_lsn, CheckpointData* data,
                                 RedoPlan* plan, Result* result) {
  LogReader reader(d_.device);
  SHEAP_RETURN_IF_ERROR(reader.Seek(start_lsn));
  const uint64_t start_offset = reader.offset();
  LogRecord rec;
  std::vector<PageId> rec_pages;
  AtomicGc::RecoveredState& gc = data->gc;

  auto current_space = [&]() -> const Space* {
    return d_.spaces->Find(gc.sem.current);
  };

  while (true) {
    auto more = reader.Next(&rec);
    SHEAP_RETURN_IF_ERROR(more.status());
    if (!*more) break;
    ++result->stats.analysis_records;

    // Transaction table maintenance.
    if (rec.IsTransactional() && rec.txn_id != 0) {
      if (rec.type == RecordType::kBegin) {
        AttEntry e;
        e.status = AttStatus::kActive;
        e.first_lsn = rec.lsn;
        e.last_lsn = rec.lsn;
        data->att[rec.txn_id] = e;
      } else if (rec.type == RecordType::kEnd) {
        data->att.erase(rec.txn_id);
        d_.utt->OnTxnEnd(rec.txn_id);
      } else {
        AttEntry& e = data->att[rec.txn_id];
        if (e.first_lsn == kInvalidLsn) e.first_lsn = rec.lsn;
        e.last_lsn = rec.lsn;
        if (rec.type == RecordType::kCommit) e.status = AttStatus::kCommitted;
        if (rec.type == RecordType::kAbortTxn) e.status = AttStatus::kAborting;
        if (rec.type == RecordType::kPrepare) e.status = AttStatus::kPrepared;
      }
      if (rec.txn_id >= data->next_txn_id) data->next_txn_id = rec.txn_id + 1;
    }

    // Dirty-page table: every redoable record's pages enter the table; the
    // buffer-manager records refine it (§2.2.4 optimization 1).
    const bool redoable = RedoExecutor::IsRedoable(rec.type);
    if (redoable) {
      RedoExecutor::AffectedPages(rec, &rec_pages);
      for (PageId p : rec_pages) {
        data->dpt.emplace(p, rec.lsn);  // insert-if-absent
      }
    }

    switch (rec.type) {
      case RecordType::kHeapFormat:
        result->format_payload = rec.payload;
        break;
      case RecordType::kClassDef: {
        Status st = d_.types->InstallAt(
            static_cast<ClassId>(rec.aux),
            TypeRegistry::DecodeMap(rec.contents, rec.count));
        SHEAP_RETURN_IF_ERROR(st);
        break;
      }
      case RecordType::kPageFetch:
        data->dpt.emplace(rec.page, rec.lsn);
        break;
      case RecordType::kEndWrite:
        // Disk is current for this page as of this record.
        data->dpt[rec.page] = rec.lsn;
        break;
      case RecordType::kCheckpoint: {
        // A newer checkpoint than the one we started from (stale master):
        // restart state from it.
        CheckpointData fresh;
        d_.utt->Clear();
        SHEAP_RETURN_IF_ERROR(DecodeCheckpointPayload(
            rec.payload, d_.spaces, d_.utt, d_.types, &fresh));
        *data = std::move(fresh);
        break;
      }
      case RecordType::kSpaceAlloc:
        d_.spaces->ApplyAllocRecord(rec);
        break;
      case RecordType::kSpaceFree:
        d_.spaces->ApplyFreeRecord(rec);
        break;
      case RecordType::kGcFlip: {
        gc.sem.from = static_cast<SpaceId>(rec.addr);
        gc.sem.current = static_cast<SpaceId>(rec.addr2);
        const Space* to = current_space();
        SHEAP_CHECK(to != nullptr);
        gc.sem.copy_ptr = to->base();
        gc.sem.alloc_ptr = to->end();
        gc.scanned.assign(to->npages, 0);
        gc.lot.assign(to->npages, kNullAddr);
        break;
      }
      case RecordType::kGcCopy: {
        const Space* to = current_space();
        SHEAP_CHECK(to != nullptr);
        // Every copy record doubles as an undo-translation entry: a crash
        // can retain a flip's copies while losing the trailing kUtr record
        // (log-suffix loss), and undo must still find the moved objects.
        {
          std::vector<TxnId> active;
          for (const auto& [id, e] : data->att) active.push_back(id);
          d_.utt->AddBatch({UtrEntry{rec.addr, rec.addr2, rec.count}},
                           active);
        }
        const HeapAddr end = rec.addr2 + rec.count * kWordSizeBytes;
        gc.sem.copy_ptr = std::max(gc.sem.copy_ptr, end);
        // Last Object Table replay (same rule as AtomicGc::UpdateLot).
        for (HeapAddr p = (rec.addr2 + kPageSizeBytes - 1) / kPageSizeBytes *
                          kPageSizeBytes;
             p < end; p += kPageSizeBytes) {
          gc.lot[(p - to->base()) / kPageSizeBytes] = rec.addr2;
        }
        if (rec.addr2 % kPageSizeBytes == 0) {
          gc.lot[(rec.addr2 - to->base()) / kPageSizeBytes] = rec.addr2;
        }
        break;
      }
      case RecordType::kGcScan: {
        if (rec.aux == LogRecord::kScanPartial) break;  // redo-only record
        const Space* to = current_space();
        SHEAP_CHECK(to != nullptr);
        const HeapAddr page_base = rec.page * kPageSizeBytes;
        if (rec.aux == LogRecord::kScanRun) {
          // Run encoding: `count` consecutive clean pages, no bump replay
          // (the executor never abandons tails).
          for (uint64_t i = 0; i < rec.count; ++i) {
            const HeapAddr base = page_base + i * kPageSizeBytes;
            if (base >= to->base() && base < to->end()) {
              gc.scanned[(base - to->base()) / kPageSizeBytes] = 1;
            }
          }
          break;
        }
        if (page_base >= to->base() && page_base < to->end()) {
          const uint64_t idx = (page_base - to->base()) / kPageSizeBytes;
          gc.scanned[idx] = 1;
          // Replay the trap path's tail abandonment exactly.
          if (rec.aux == LogRecord::kScanBumped &&
              gc.sem.copy_ptr > page_base &&
              gc.sem.copy_ptr < page_base + kPageSizeBytes) {
            gc.sem.copy_ptr = page_base + kPageSizeBytes;
          }
        }
        break;
      }
      case RecordType::kGcCopyBatch: {
        const Space* to = current_space();
        SHEAP_CHECK(to != nullptr);
        // Same invariants as kGcCopy, replayed per coalesced object: undo
        // translations, copy frontier, and the Last Object Table.
        {
          std::vector<TxnId> active;
          for (const auto& [id, e] : data->att) active.push_back(id);
          d_.utt->AddBatch(rec.utr_entries, active);
        }
        gc.sem.copy_ptr =
            std::max(gc.sem.copy_ptr, rec.addr2 + rec.count * kWordSizeBytes);
        for (const UtrEntry& e : rec.utr_entries) {
          const HeapAddr obj_end = e.to + e.nwords * kWordSizeBytes;
          for (HeapAddr p =
                   (e.to + kPageSizeBytes - 1) / kPageSizeBytes * kPageSizeBytes;
               p < obj_end; p += kPageSizeBytes) {
            gc.lot[(p - to->base()) / kPageSizeBytes] = e.to;
          }
          if (e.to % kPageSizeBytes == 0) {
            gc.lot[(e.to - to->base()) / kPageSizeBytes] = e.to;
          }
        }
        break;
      }
      case RecordType::kGcComplete:
        gc.sem.from = kInvalidSpaceId;
        break;
      case RecordType::kRootObject:
        gc.root_object = rec.addr;
        break;
      case RecordType::kUtr: {
        std::vector<TxnId> active;
        for (const auto& [id, e] : data->att) active.push_back(id);
        d_.utt->AddBatch(rec.utr_entries, active);
        break;
      }
      case RecordType::kAlloc: {
        const Space* cur = current_space();
        if (cur != nullptr && cur->Contains(rec.addr)) {
          gc.sem.alloc_ptr = std::min(gc.sem.alloc_ptr, rec.addr);
        }
        break;
      }
      case RecordType::kV2sCopy: {
        const Space* cur = current_space();
        if (cur != nullptr && cur->Contains(rec.addr2)) {
          gc.sem.alloc_ptr = std::min(gc.sem.alloc_ptr, rec.addr2);
        }
        // Promotions translate undo information too (their kUtr record may
        // be lost with the log suffix).
        std::vector<TxnId> active;
        for (const auto& [id, e] : data->att) active.push_back(id);
        d_.utt->AddBatch({UtrEntry{rec.addr, rec.addr2, rec.count}}, active);
        break;
      }
      case RecordType::kInitialValue: {
        // Method-2 promotion (§5.5): addr = reserved stable address,
        // addr2 = volatile source. Same frontier/UTT treatment.
        const Space* cur = current_space();
        if (cur != nullptr && cur->Contains(rec.addr)) {
          gc.sem.alloc_ptr = std::min(gc.sem.alloc_ptr, rec.addr);
        }
        std::vector<TxnId> active;
        for (const auto& [id, e] : data->att) active.push_back(id);
        d_.utt->AddBatch({UtrEntry{rec.addr2, rec.addr, rec.count}}, active);
        break;
      }
      // Exhaustive (lint-enforced): the lifecycle records maintain the ATT
      // above; kUpdate/kClr contribute only DPT entries (IsRedoable path);
      // kVolatileFlip describes the volatile area, which does not survive
      // a crash — analysis has nothing to rebuild from it. The kDtx*
      // records live only in a 2PC coordinator's decision log (scanned by
      // TwoPhaseCoordinator::Rescan, not here); shard analysis skips them.
      case RecordType::kBegin:
      case RecordType::kUpdate:
      case RecordType::kClr:
      case RecordType::kCommit:
      case RecordType::kAbortTxn:
      case RecordType::kEnd:
      case RecordType::kPrepare:
      case RecordType::kVolatileFlip:
      case RecordType::kDtxDecision:
      case RecordType::kDtxEnd:
        break;
    }

    // Fused plan construction: the record is already decoded, so redo will
    // never re-read this log range. Gating against the *final* DPT happens
    // at execution time, so entries made stale by a checkpoint restart
    // above are harmlessly skipped there.
    if (redoable) {
      plan->entries.push_back(
          RedoPlanEntry{std::move(rec), std::move(rec_pages)});
      rec = LogRecord();
      rec_pages.clear();
    }
  }
  result->stats.saw_torn_tail = reader.saw_torn_tail();
  result->stats.log_bytes_read += reader.offset() - start_offset;
  result->stats.log_segments_prefetched += reader.segments_prefetched();
  return Status::OK();
}

Status RecoveryManager::Redo(const CheckpointData& data,
                             Lsn analysis_start_lsn, RedoPlan* plan,
                             Result* result) {
  result->stats.redo_partitions = std::max<uint32_t>(1, d_.recovery_threads);
  if (data.dpt.empty()) return Status::OK();
  Lsn redo_start = kInvalidLsn;
  for (const auto& [page, rec_lsn] : data.dpt) {
    if (rec_lsn == kInvalidLsn) continue;
    if (redo_start == kInvalidLsn || rec_lsn < redo_start) {
      redo_start = rec_lsn;
    }
  }
  if (redo_start == kInvalidLsn) return Status::OK();
  redo_start = std::max<Lsn>(redo_start, d_.device->truncated_prefix() + 1);

  // The fused plan covers [analysis_start, log end). A DPT recLSN can
  // predate the starting checkpoint (a page dirtied before it and not yet
  // written back): stream-decode that gap once and prepend it.
  RedoPlan exec;
  if (redo_start < analysis_start_lsn) {
    LogReader reader(d_.device);
    SHEAP_RETURN_IF_ERROR(reader.Seek(redo_start));
    const uint64_t start_offset = reader.offset();
    uint64_t bytes = 0;
    LogRecord rec;
    std::vector<PageId> rec_pages;
    while (true) {
      const uint64_t before = reader.offset();
      auto more = reader.Next(&rec);
      SHEAP_RETURN_IF_ERROR(more.status());
      if (!*more) break;
      if (rec.lsn >= analysis_start_lsn) {
        bytes = before - start_offset;
        break;
      }
      bytes = reader.offset() - start_offset;
      if (!RedoExecutor::IsRedoable(rec.type)) continue;
      RedoExecutor::AffectedPages(rec, &rec_pages);
      exec.entries.push_back(
          RedoPlanEntry{std::move(rec), std::move(rec_pages)});
      rec = LogRecord();
      rec_pages.clear();
    }
    result->stats.log_bytes_read += bytes;
    result->stats.log_segments_prefetched += reader.segments_prefetched();
    d_.clock->ChargeLogAppend(bytes);
  }
  // Plan entries below redo_start cannot pass any page's DPT gate; filter
  // them so redo_records_seen matches the historical from-redo_start scan.
  for (RedoPlanEntry& entry : plan->entries) {
    if (entry.rec.lsn < redo_start) continue;
    exec.entries.push_back(std::move(entry));
  }
  plan->entries.clear();
  result->stats.redo_records_seen += exec.entries.size();

  if (d_.instant != nullptr) {
    // Instant recovery: hand the fused plan to the per-page gate instead
    // of executing it. Redo work happens after Open — on demand at first
    // touch and in cooperative drain batches — so redo_records_applied
    // starts at zero here and converges to the offline count as the gate
    // drains (StableHeap folds the gate's counters into these stats).
    d_.instant->Install(std::move(exec), data.dpt);
    result->stats.redo_partitions = d_.instant->drain_threads();
    return Status::OK();
  }

  RedoExecutor::Deps deps;
  deps.pool = d_.pool;
  deps.spaces = d_.spaces;
  deps.clock = d_.clock;
  RedoExecutor executor(deps, std::max<uint32_t>(1, d_.recovery_threads));
  uint64_t applied = 0;
  SHEAP_RETURN_IF_ERROR(executor.Execute(exec, data.dpt, &applied));
  result->stats.redo_records_applied += applied;
  result->stats.redo_partitions = executor.threads();
  return Status::OK();
}

Status RecoveryManager::Undo(CheckpointData* data, Result* result) {
  LogReader reader(d_.device);
  for (auto& [txn_id, entry] : data->att) {
    if (entry.status == AttStatus::kPrepared) {
      // In doubt (2PC): neither redone away nor undone; restored with its
      // locks and in-memory undo info until the coordinator decides.
      SHEAP_RETURN_IF_ERROR(RestorePrepared(txn_id, entry, result));
      continue;
    }
    if (entry.status == AttStatus::kCommitted) {
      // Winner missing only its end record.
      LogRecord end;
      end.type = RecordType::kEnd;
      end.txn_id = txn_id;
      d_.log->Append(&end);
      d_.utt->OnTxnEnd(txn_id);
      ++result->stats.winners_closed;
      continue;
    }

    // Loser: walk the chain backwards, writing CLRs (repeating history
    // makes this exactly the normal abort algorithm, §2.2.3).
    Lsn chain_head = entry.last_lsn;
    Lsn cur = entry.last_lsn;
    while (cur != kInvalidLsn) {
      LogRecord rec;
      SHEAP_RETURN_IF_ERROR(reader.ReadAt(cur, &rec));
      ++result->stats.undo_records;
      switch (rec.type) {
        case RecordType::kUpdate: {
          const HeapAddr target = d_.utt->Translate(rec.addr);
          uint64_t value = rec.old_word;
          if ((rec.aux & LogRecord::kFlagPointer) != 0 &&
              value != kNullAddr) {
            value = d_.utt->Translate(value);
          }
          LogRecord clr;
          clr.type = RecordType::kClr;
          clr.txn_id = txn_id;
          clr.prev_lsn = chain_head;
          clr.undo_next_lsn = rec.prev_lsn;
          clr.addr = target;
          clr.new_word = value;
          clr.aux = rec.aux;
          const Lsn clr_lsn = d_.log->Append(&clr);
          chain_head = clr_lsn;
          SHEAP_RETURN_IF_ERROR(
              d_.mem->WriteWordLogged(target, value, clr_lsn));
          ++result->stats.clrs_written;
          cur = rec.prev_lsn;
          break;
        }
        case RecordType::kClr:
          cur = rec.undo_next_lsn;
          break;
        case RecordType::kBegin:
          cur = kInvalidLsn;
          break;
        case RecordType::kCommit:
          return Status::Corruption("commit record in loser chain");
        default:
          // kAlloc / kV2sCopy / kInitialValue / kAbortTxn: logical no-ops
          // (the objects become unreachable once pointer stores are undone).
          cur = rec.prev_lsn;
          break;
      }
    }
    LogRecord end;
    end.type = RecordType::kEnd;
    end.txn_id = txn_id;
    d_.log->Append(&end);
    d_.utt->OnTxnEnd(txn_id);
    ++result->stats.losers_aborted;
  }
  data->att.clear();
  return Status::OK();
}

Status RecoveryManager::RestorePrepared(TxnId txn_id, const AttEntry& entry,
                                        Result* result) {
  auto txn = std::make_unique<Txn>();
  txn->id = txn_id;
  txn->state = TxnState::kPrepared;
  txn->first_lsn = entry.first_lsn;
  txn->last_lsn = entry.last_lsn;

  LogReader reader(d_.device);
  std::vector<TxnUpdate> updates;  // collected newest-first
  Lsn cur = entry.last_lsn;
  while (cur != kInvalidLsn) {
    LogRecord rec;
    SHEAP_RETURN_IF_ERROR(reader.ReadAt(cur, &rec));
    switch (rec.type) {
      case RecordType::kUpdate: {
        TxnUpdate e;
        e.obj_base = d_.utt->Translate(rec.addr2);
        const HeapAddr slot_addr = d_.utt->Translate(rec.addr);
        e.slot = SlotIndex(e.obj_base, slot_addr);
        e.is_pointer = (rec.aux & LogRecord::kFlagPointer) != 0;
        e.old_word = e.is_pointer && rec.old_word != kNullAddr
                         ? d_.utt->Translate(rec.old_word)
                         : rec.old_word;
        e.new_word = e.is_pointer && rec.new_word != kNullAddr
                         ? d_.utt->Translate(rec.new_word)
                         : rec.new_word;
        e.logged = true;
        e.lsn = rec.lsn;
        updates.push_back(e);
        SHEAP_RETURN_IF_ERROR(d_.locks->AcquireWrite(txn_id, e.obj_base));
        break;
      }
      case RecordType::kAlloc: {
        const HeapAddr base = d_.utt->Translate(rec.addr);
        txn->allocs.push_back(TxnAlloc{base, /*stable_area=*/true});
        SHEAP_RETURN_IF_ERROR(d_.locks->AcquireWrite(txn_id, base));
        break;
      }
      case RecordType::kV2sCopy:
      case RecordType::kInitialValue: {
        // The promoted copy belongs to the prepared transaction.
        const HeapAddr base = d_.utt->Translate(
            rec.type == RecordType::kV2sCopy ? rec.addr2 : rec.addr);
        SHEAP_RETURN_IF_ERROR(d_.locks->AcquireWrite(txn_id, base));
        break;
      }
      case RecordType::kClr:
        return Status::Corruption("CLR in a prepared transaction's chain");
      case RecordType::kPrepare:
        txn->gtid = rec.aux;
        break;
      default:
        break;  // kBegin
    }
    cur = rec.prev_lsn;
  }
  txn->updates.assign(updates.rbegin(), updates.rend());
  d_.txns->Restore(std::move(txn));
  ++result->stats.prepared_restored;
  return Status::OK();
}

StatusOr<RecoveryManager::Result> RecoveryManager::Recover() {
  Result result;
  Status st = RecoverImpl(&result);
  if (!st.ok()) {
    // Injected-fault (or corruption) early return: the Open fails and the
    // heap is torn down, but the instant gate must not outlive the attempt
    // half-armed — deactivate it and record the terminal aborted outcome.
    // The caller pre-stamps its salvaged stats kAborted; the log is
    // untouched, so the next recovery simply replays everything.
    if (d_.instant != nullptr) d_.instant->Abandon();
    return st;
  }
  result.stats.outcome = (d_.instant != nullptr && d_.instant->active())
                             ? RecoveryOutcome::kOpenPendingRedo
                             : RecoveryOutcome::kComplete;
  return result;
}

Status RecoveryManager::RecoverImpl(Result* result_out) {
  SimSpan span(d_.clock);
  Result& result = *result_out;
  CheckpointData data;
  RedoPlan plan;
  Lsn start_lsn;
  bool have_checkpoint;
  // Crash points between the passes prove recovery is idempotent: a crash
  // *during* recovery leaves history partially repeated (redone pages may
  // even be written back, CLRs may be flushed), and the next recovery must
  // converge to the same state.
  [[maybe_unused]] FaultInjector* faults = d_.device->faults();
  {
    SimSpan analysis_span(d_.clock);
    SHEAP_RETURN_IF_ERROR(FindStartingCheckpoint(&data, &start_lsn,
                                                 &have_checkpoint, &result));
    SHEAP_RETURN_IF_ERROR(Analysis(start_lsn, &data, &plan, &result));
    // The analysis scan streams the log off the device sequentially;
    // charge that read time (it is what checkpoint frequency buys down,
    // experiment E6). Redo reuses the decoded plan instead of re-reading,
    // so — unlike the historical two-pass pipeline — this range is charged
    // exactly once.
    d_.clock->ChargeLogAppend(result.stats.log_bytes_read);
    result.stats.analysis_ns = analysis_span.elapsed_ns();
  }
  SHEAP_FAULT_POINT(faults, "recovery.analysis.done");
  {
    SimSpan redo_span(d_.clock);
    SHEAP_RETURN_IF_ERROR(Redo(data, start_lsn, &plan, &result));
    result.stats.redo_ns = redo_span.elapsed_ns();
  }
  SHEAP_FAULT_POINT(faults, "recovery.redo.done");
  {
    SimSpan undo_span(d_.clock);
    SHEAP_RETURN_IF_ERROR(Undo(&data, &result));
    result.stats.undo_ns = undo_span.elapsed_ns();
  }
  SHEAP_FAULT_POINT(faults, "recovery.undo.done");
  d_.spaces->DropFreedFromDisk();
  if (result.format_payload.empty()) {
    result.format_payload = std::move(data.format_payload);
  }
  result.gc = std::move(data.gc);
  result.next_txn_id = data.next_txn_id;
  result.stats.sim_time_ns = span.elapsed_ns();
  return Status::OK();
}

}  // namespace sheap
