// Checkpointing (paper §2.2.4 optimization 2, §4.6, Figure 4.5).
//
// A checkpoint is taken at a low-level quiescent point (an action boundary —
// no thread is mid-way through the write-ahead protocol). It snapshots the
// dirty-page table, the active-transaction table, the space table, the GC
// state (including the scan bitmap and Last Object Table, so recovery after
// a crash during a collection needs no heap traversal), the undo translation
// table, and the class registry. Checkpoints are cheap: one spooled record
// and one master-pointer write — no synchronous log force, no page flushes.

#ifndef SHEAP_RECOVERY_CHECKPOINT_H_
#define SHEAP_RECOVERY_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "gc/atomic_gc.h"
#include "heap/space_manager.h"
#include "heap/type_registry.h"
#include "recovery/tables.h"
#include "recovery/utt.h"
#include "storage/buffer_pool.h"
#include "storage/env.h"
#include "txn/txn_manager.h"
#include "wal/log_writer.h"

namespace sheap {

/// Decoded checkpoint payload (also the unit recovery analysis starts from).
struct CheckpointData {
  DirtyPageTable dpt;
  ActiveTxnTable att;
  AtomicGc::RecoveredState gc;
  TxnId next_txn_id = 1;
  /// The kHeapFormat payload, carried in every checkpoint so log
  /// truncation can drop the format record itself.
  std::vector<uint8_t> format_payload;

  // spaces / utt / registry are decoded directly into the live objects.
};

/// Serializes the full checkpoint payload.
void EncodeCheckpointPayload(
    const BufferPool& pool, const TxnManager& txns, const AtomicGc& gc,
    const SpaceManager& spaces, const UndoTranslationTable& utt,
    const TypeRegistry& types, const std::vector<uint8_t>& format_payload,
    const std::vector<std::pair<PageId, Lsn>>& extra_dirty,
    std::vector<uint8_t>* out);

/// Parses a checkpoint payload; space/utt/registry state is installed into
/// the given live objects, the rest into *data.
Status DecodeCheckpointPayload(const std::vector<uint8_t>& payload,
                               SpaceManager* spaces,
                               UndoTranslationTable* utt, TypeRegistry* types,
                               CheckpointData* data);

struct CheckpointStats {
  uint64_t checkpoints_taken = 0;
  uint64_t flush_checkpoints_taken = 0;  // TakeWithWriteback calls
  uint64_t last_payload_bytes = 0;
  uint64_t last_pause_ns = 0;
  Lsn last_checkpoint_lsn = kInvalidLsn;
  Lsn last_truncation_lsn = kInvalidLsn;
};

/// Takes checkpoints and truncates the log behind them.
class Checkpointer {
 public:
  Checkpointer(LogWriter* log, LogDevice* device, BufferPool* pool,
               TxnManager* txns, AtomicGc* gc, SpaceManager* spaces,
               UndoTranslationTable* utt, TypeRegistry* types,
               SimClock* clock, std::vector<uint8_t> format_payload)
      : format_payload_(std::move(format_payload)),
        log_(log),
        device_(device),
        pool_(pool),
        txns_(txns),
        gc_(gc),
        spaces_(spaces),
        utt_(utt),
        types_(types),
        clock_(clock) {}

  /// Take a checkpoint: spool the record, flush the buffer (asynchronous in
  /// spirit; no force), update the master pointer, truncate the log prefix
  /// no recovery could need.
  Status Take();

  /// Flush checkpoint: push every dirty page through the pool's parallel
  /// run-coalescing writer first, then Take(). The resulting checkpoint's
  /// DPT is (nearly) empty, so redo after a crash starts at the checkpoint
  /// itself — trading checkpoint-time I/O for recovery time. The default
  /// Take() stays flush-free (the paper's cheap checkpoint).
  Status TakeWithWriteback();

  /// Optional extra truncation floor (e.g. the oldest initial-value record
  /// of a pending method-2 promotion). Return kInvalidLsn for none.
  std::function<Lsn()> extra_keep_floor;

  /// Pages that are *logically* dirty even though no frame is dirty: a
  /// pending method-2 promotion's reserved pages exist only in the log, so
  /// the checkpoint DPT must carry them (page, initial-value LSN) or redo
  /// would never reach back to materialize them.
  std::function<std::vector<std::pair<PageId, Lsn>>()> extra_dirty_pages;

  const CheckpointStats& stats() const { return stats_; }

 private:
  std::vector<uint8_t> format_payload_;
  LogWriter* log_;
  LogDevice* device_;
  BufferPool* pool_;
  TxnManager* txns_;
  AtomicGc* gc_;
  SpaceManager* spaces_;
  UndoTranslationTable* utt_;
  TypeRegistry* types_;
  SimClock* clock_;
  CheckpointStats stats_;
};

}  // namespace sheap

#endif  // SHEAP_RECOVERY_CHECKPOINT_H_
