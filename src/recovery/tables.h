// Recovery bookkeeping tables: the active-transaction table and dirty-page
// table reconstructed by analysis and snapshotted by checkpoints
// (paper §2.2.4, §4.6).

#ifndef SHEAP_RECOVERY_TABLES_H_
#define SHEAP_RECOVERY_TABLES_H_

#include <cstdint>
#include <map>

#include "heap/handle_table.h"
#include "storage/page.h"

namespace sheap {

/// Transaction status as known to recovery.
enum class AttStatus : uint8_t {
  kActive = 0,
  kCommitted = 1,  // kCommit seen, kEnd not yet
  kAborting = 2,   // kAbortTxn seen, rollback incomplete
  kPrepared = 3,   // kPrepare seen: in doubt; survives recovery with locks
};

/// One active-transaction-table entry.
struct AttEntry {
  AttStatus status = AttStatus::kActive;
  Lsn first_lsn = kInvalidLsn;
  Lsn last_lsn = kInvalidLsn;  // head of the backward chain
};

using ActiveTxnTable = std::map<TxnId, AttEntry>;

/// Dirty-page table: page -> recovery LSN (redo must start at the earliest).
using DirtyPageTable = std::map<PageId, Lsn>;

}  // namespace sheap

#endif  // SHEAP_RECOVERY_TABLES_H_
