// InstantRedoManager: the per-page redo gate behind instant recovery
// (StableHeapOptions::instant_recovery; ROADMAP item 2).
//
// Offline recovery finishes the whole redo pass before StableHeap::Open
// returns, so downtime grows with the log volume even with PR 3's
// partitioned executor. Instant recovery opens the heap right after
// analysis instead: the fused redo plan is *installed* here as a shared
// per-page work table, and every page moves through a tiny state machine
//
//     pending --> in-flight --> done
//
// driven from two directions, coordinated so no page is redone twice:
//
//  * on demand — BufferPool::Hooks::before_pin calls OnPageAccess on every
//    pin, so the first touch of a not-yet-redone page (a mutator read or
//    write, an undo CLR, a GC scan) replays that page's plan entries first.
//    This is the read barrier of Sauer & Härder's REDO-only / HEAL-style
//    on-demand recovery, expressed as a pool hook;
//  * background drain — DrainStep claims batches of still-pending pages
//    (ascending page id) and replays them, serially or across page-hash
//    partitions exactly like RedoExecutor::Execute. StableHeap calls it
//    cooperatively at action boundaries (the MaybeStepCollector idiom).
//
// Correctness leans on the same argument as the partitioned executor: redo
// order matters only within a page, and every application here goes through
// RedoExecutor::ApplyEntryToPage with the identical DPT/pageLSN/live-space
// gates — so any interleaving of touches and drain batches converges to the
// offline pass's bytes (instant_recovery_test proves this property over
// random first-touch orders and drain thread counts).
//
// Concurrency: the mutator serializes all heap actions, so Install /
// OnPageAccess / DrainStep are called from one thread at a time. Drain
// workers never call back into the gate — the apply path sets a
// thread-local in-redo flag that short-circuits before_pin re-entry (both
// for a worker's own pins and for the recursive pin the on-demand path
// itself performs). The work table is guarded by one leaf mutex; the plan
// and DPT are immutable after Install and read without it.
//
// Failure: a transient I/O error during a page's replay reverts the page to
// pending — the next touch or drain batch retries it, so a fault storm
// degrades latency, never correctness. An injected crash marks the gate
// aborted (a terminal outcome; see RecoveryOutcome) and the heap unusable,
// exactly like any other crash point; reopening recovers from the log.

#ifndef SHEAP_RECOVERY_INSTANT_REDO_H_
#define SHEAP_RECOVERY_INSTANT_REDO_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "fault/fault_injector.h"
#include "heap/space_manager.h"
#include "recovery/redo_executor.h"
#include "recovery/tables.h"
#include "storage/buffer_pool.h"
#include "util/sim_clock.h"

namespace sheap {

/// Counters for the gate (folded into RecoveryStats by StableHeap).
struct InstantRedoStats {
  uint64_t ondemand_pages = 0;  // pages redone at first touch
  uint64_t drained_pages = 0;   // pages redone by the background drain
  uint64_t pending_pages = 0;   // pages still awaiting redo
  /// Plan entries that changed at least one page so far — converges to the
  /// offline pass's redo_records_applied once the plan is exhausted.
  uint64_t records_applied = 0;
  bool installed = false;  // Install ran (a redo plan exists)
  bool aborted = false;    // an injected crash hit the gate (terminal)
};

/// See file comment.
class InstantRedoManager {
 public:
  struct Deps {
    BufferPool* pool = nullptr;
    const SpaceManager* spaces = nullptr;
    SimClock* clock = nullptr;
    FaultInjector* faults = nullptr;  // may be null
    /// Worker partitions for DrainStep batches (1 = serial). Final heap
    /// bytes are identical for every value.
    uint32_t drain_threads = 1;
  };

  explicit InstantRedoManager(const Deps& deps);

  InstantRedoManager(const InstantRedoManager&) = delete;
  InstantRedoManager& operator=(const InstantRedoManager&) = delete;

  /// Adopt the fused redo plan (RecoveryManager::Redo hands it over instead
  /// of executing it). Builds the per-page work table: page -> its plan
  /// entries in LSN order, pre-gated by the DPT recLSN so pages with
  /// nothing to replay never enter the table. Called once, before the heap
  /// serves any action.
  void Install(RedoPlan plan, DirtyPageTable dpt) SHEAP_EXCLUDES(mu_);

  /// True while any page is still pending (the gate must stay on the pool
  /// hook). Flips off permanently once the table drains.
  bool active() const { return active_; }

  /// The before_pin hook: if `pid` is pending, replay its entries now
  /// (claiming it in-flight so the drain skips it). No-op when called from
  /// inside a replay (the thread-local in-redo flag) or when inactive.
  /// Crash window: "recovery.ondemand.page_redo".
  Status OnPageAccess(PageId pid) SHEAP_EXCLUDES(mu_);

  /// Claim up to `max_pages` pending pages (ascending page id) and replay
  /// them, across drain_threads page-hash partitions. Deterministic: batch
  /// selection, partition assignment, result merge and the simulated-time
  /// charge (busiest lane + a merge term) are all independent of host
  /// scheduling. Failed pages revert to pending; the first failure in page
  /// order is returned. Crash window: "recovery.drain.step".
  Status DrainStep(uint64_t max_pages) SHEAP_EXCLUDES(mu_);

  /// Drain to completion (or first error).
  Status DrainAll();

  /// Deactivate the gate without replaying anything — the enclosing Open
  /// failed (injected fault after the plan was installed) and the heap is
  /// being torn down. Marks the gate aborted so the terminal outcome is
  /// observable; pending pages are simply abandoned (the log still covers
  /// them, and the post-open checkpoint never ran, so the next recovery
  /// replays them).
  void Abandon() SHEAP_EXCLUDES(mu_);

  InstantRedoStats stats() const SHEAP_EXCLUDES(mu_);

  /// Oldest DPT recLSN over not-yet-done pages (kInvalidLsn if none): the
  /// gate's contribution to the checkpoint log-truncation floor — a
  /// checkpoint taken mid-drain must keep every record a pending page still
  /// needs.
  Lsn MinPendingRecLsn() const SHEAP_EXCLUDES(mu_);

  /// (page, DPT recLSN) for every not-yet-done page, page-ordered: chained
  /// into Checkpointer::extra_dirty_pages so a checkpoint taken mid-drain
  /// carries the pending pages in its DPT — a crash right after it still
  /// redoes them from their original recLSNs.
  std::vector<std::pair<PageId, Lsn>> PendingDirtyPages() const
      SHEAP_EXCLUDES(mu_);

  uint32_t drain_threads() const { return drain_threads_; }

 private:
  enum class PageState : uint8_t { kPending, kInFlight, kDone };

  struct PageWork {
    PageState state = PageState::kPending;
    std::vector<uint32_t> entries;  // plan indexes, ascending LSN
  };

  /// Replay one page's entries (sets the in-redo flag for the duration).
  /// *applied_flags gets one byte per entry: did this page's slice of the
  /// entry change bytes (merged into records_applied under mu_).
  Status ApplyPage(PageId pid, const std::vector<uint32_t>& entries,
                   std::vector<uint8_t>* applied_flags);

  /// Commit one finished page under mu_: mark done, fold applied flags.
  void CommitPage(PageId pid, const std::vector<uint32_t>& entries,
                  const std::vector<uint8_t>& applied_flags,
                  uint64_t InstantRedoStats::*counter) SHEAP_REQUIRES(mu_);

  Deps d_;
  uint32_t drain_threads_;
  RedoExecutor exec_;  // single-page applier (threads() unused here)

  // Immutable after Install; drain workers read them without locking.
  RedoPlan plan_;
  DirtyPageTable dpt_;

  /// Leaf lock for the work table (nothing else is acquired under it; the
  /// apply paths run outside it).
  mutable Mutex mu_;
  std::map<PageId, PageWork> pages_ SHEAP_GUARDED_BY(mu_);
  std::vector<uint8_t> entry_applied_ SHEAP_GUARDED_BY(mu_);
  uint64_t pending_count_ SHEAP_GUARDED_BY(mu_) = 0;
  InstantRedoStats stats_ SHEAP_GUARDED_BY(mu_);

  /// Written by Install/the mutator thread only; drain workers never read
  /// it (they check the thread-local in-redo flag first).
  bool active_ = false;
};

}  // namespace sheap

#endif  // SHEAP_RECOVERY_INSTANT_REDO_H_
