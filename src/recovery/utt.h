// Undo Translation Table (paper §4.2.1-4.2.2, Figure 4.3).
//
// The undo information of an active transaction names objects by the
// addresses they had when the update ran. When a flip moves those objects,
// the addresses (and any old pointer *values* that referenced from-space
// objects) go stale. At each flip the collector copies every object named
// by active transactions' recovery information (undo roots are GC roots),
// logs Undo Translation Records, and enters them here. Undo — during normal
// abort after a crash, or in the recovery undo pass — translates addresses
// through the table, composing across multiple flips.
//
// Entries are pruned when every transaction that was active at the flip has
// ended; the table is part of the checkpoint so recovery can rebuild it
// without reading the log before the checkpoint.

#ifndef SHEAP_RECOVERY_UTT_H_
#define SHEAP_RECOVERY_UTT_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/status.h"
#include "heap/address.h"
#include "heap/handle_table.h"
#include "util/coder.h"
#include "wal/record.h"

namespace sheap {

/// Composable object-relocation map keyed by source address range.
class UndoTranslationTable {
 public:
  UndoTranslationTable() = default;

  /// Add a flip's translations. `active` is the set of transactions active
  /// at the flip; the batch can be pruned once they have all ended.
  void AddBatch(const std::vector<UtrEntry>& entries,
                const std::vector<TxnId>& active);

  /// Notify that a transaction ended (commit or abort completed).
  void OnTxnEnd(TxnId txn);

  /// Translate an address through relocation chains to its current value.
  /// Addresses not covered by any entry are returned unchanged.
  HeapAddr Translate(HeapAddr a) const;

  /// True if `a` falls inside some entry's source range.
  bool Covers(HeapAddr a) const;

  size_t EntryCount() const { return by_from_.size(); }
  size_t BatchCount() const { return batches_.size(); }
  void Clear();

  // Checkpoint payload.
  void EncodeTo(Encoder* enc) const;
  Status DecodeFrom(Decoder* dec);

 private:
  struct Batch {
    std::vector<UtrEntry> entries;
    std::vector<TxnId> pending;  // txns that must end before pruning
  };

  const UtrEntry* FindCovering(HeapAddr a) const;
  void RebuildIndex();

  std::vector<Batch> batches_;
  // from-address -> entry, for range lookup via upper_bound.
  std::map<HeapAddr, UtrEntry> by_from_;
};

}  // namespace sheap

#endif  // SHEAP_RECOVERY_UTT_H_
