// RecoveryManager: crash recovery by repeating history (paper §2.2.3, §4.5).
//
// Three phases over the stable log, starting from the checkpoint named by
// the master pointer (falling back to a scan when the newest checkpoint is
// torn):
//
//  Analysis  — rebuild the active-transaction table, dirty-page table
//              (superset, refined by page-fetch / end-write records), space
//              table, class registry, UTT, and the GC state (from flip /
//              copy / scan / complete / root records) — *without touching
//              the heap*.
//  Redo      — repeat history: apply every physical redo record, gated per
//              page by the page LSN, starting at the oldest recovery LSN.
//              GC copy and scan steps redo exactly like updates; after this
//              pass the repeating-history invariant (2.1) holds again.
//  Undo      — abort the losers: walk each loser's record chain backwards,
//              writing CLRs; undo addresses and undo pointer values are
//              translated through the UTT (§4.2.2). Committed-but-unended
//              transactions just get their kEnd record.
//
// Total work is O(log read since checkpoint) + O(loser undo): independent
// of heap size, even if the crash interrupted a collection — the
// interrupted collection's state is reconstructed and the collection simply
// continues incrementally afterwards (§3.5.3).

#ifndef SHEAP_RECOVERY_RECOVERY_H_
#define SHEAP_RECOVERY_RECOVERY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "gc/atomic_gc.h"
#include "heap/heap_memory.h"
#include "recovery/checkpoint.h"
#include "heap/space_manager.h"
#include "heap/type_registry.h"
#include "recovery/redo_executor.h"
#include "recovery/tables.h"
#include "recovery/utt.h"
#include "storage/buffer_pool.h"
#include "storage/sim_log_device.h"
#include "txn/lock_manager.h"
#include "txn/txn_manager.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"

namespace sheap {

struct RecoveryStats {
  uint64_t analysis_records = 0;
  uint64_t redo_records_seen = 0;
  uint64_t redo_records_applied = 0;
  uint64_t undo_records = 0;
  uint64_t clrs_written = 0;
  uint64_t losers_aborted = 0;
  uint64_t winners_closed = 0;
  uint64_t prepared_restored = 0;  // in-doubt 2PC txns kept alive
  uint64_t log_bytes_read = 0;
  uint64_t sim_time_ns = 0;
  // Phase timings (simulated). analysis_ns covers locating the starting
  // checkpoint plus the fused analysis/plan-building scan.
  uint64_t analysis_ns = 0;
  uint64_t redo_ns = 0;
  uint64_t undo_ns = 0;
  /// Worker partitions the redo plan was executed across (1 = serial).
  uint64_t redo_partitions = 0;
  /// Log segments the streaming readers loaded ahead of the decode cursor.
  uint64_t log_segments_prefetched = 0;
  bool used_master_checkpoint = false;
  bool saw_torn_tail = false;
};

/// Runs the three recovery phases against a SimEnv's surviving state.
class RecoveryManager {
 public:
  struct Deps {
    SimLogDevice* device = nullptr;
    LogWriter* log = nullptr;  // for CLRs / end records written during undo
    BufferPool* pool = nullptr;
    HeapMemory* mem = nullptr;
    SpaceManager* spaces = nullptr;
    TypeRegistry* types = nullptr;
    UndoTranslationTable* utt = nullptr;
    TxnManager* txns = nullptr;
    LockManager* locks = nullptr;  // re-acquired for in-doubt 2PC txns
    SimClock* clock = nullptr;
    /// Redo worker partitions (1 = the historical serial path).
    uint32_t recovery_threads = 1;
  };

  struct Result {
    AtomicGc::RecoveredState gc;
    TxnId next_txn_id = 1;
    std::vector<uint8_t> format_payload;  // kHeapFormat contents, if seen
    RecoveryStats stats;
  };

  explicit RecoveryManager(const Deps& deps) : d_(deps) {}

  /// Run analysis + redo + undo. On return the stable heap state is exactly
  /// the committed state plus any in-progress collection, ready for normal
  /// operation.
  StatusOr<Result> Recover();

 private:
  Status FindStartingCheckpoint(CheckpointData* data, Lsn* start_lsn,
                                bool* have_checkpoint, Result* result);
  /// The analysis scan is fused with redo-plan construction: every
  /// redoable record it decodes goes straight into *plan (LSN order), so
  /// the redo phase never re-reads or re-decodes the analysis range.
  Status Analysis(Lsn start_lsn, CheckpointData* data, RedoPlan* plan,
                  Result* result);
  /// Execute redo from the plan (plus a supplementary streamed scan when
  /// the oldest DPT recLSN precedes the analysis start) via RedoExecutor.
  Status Redo(const CheckpointData& data, Lsn analysis_start_lsn,
              RedoPlan* plan, Result* result);
  Status Undo(CheckpointData* data, Result* result);
  /// Rebuild an in-doubt (prepared) transaction: in-memory undo info from
  /// its log chain (addresses translated through the UTT) and its write
  /// locks, so it can be committed or aborted by the coordinator later.
  Status RestorePrepared(TxnId txn_id, const AttEntry& entry,
                         Result* result);

  Deps d_;
};

}  // namespace sheap

#endif  // SHEAP_RECOVERY_RECOVERY_H_
