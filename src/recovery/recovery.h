// RecoveryManager: crash recovery by repeating history (paper §2.2.3, §4.5).
//
// Three phases over the stable log, starting from the checkpoint named by
// the master pointer (falling back to a scan when the newest checkpoint is
// torn):
//
//  Analysis  — rebuild the active-transaction table, dirty-page table
//              (superset, refined by page-fetch / end-write records), space
//              table, class registry, UTT, and the GC state (from flip /
//              copy / scan / complete / root records) — *without touching
//              the heap*.
//  Redo      — repeat history: apply every physical redo record, gated per
//              page by the page LSN, starting at the oldest recovery LSN.
//              GC copy and scan steps redo exactly like updates; after this
//              pass the repeating-history invariant (2.1) holds again.
//  Undo      — abort the losers: walk each loser's record chain backwards,
//              writing CLRs; undo addresses and undo pointer values are
//              translated through the UTT (§4.2.2). Committed-but-unended
//              transactions just get their kEnd record.
//
// Total work is O(log read since checkpoint) + O(loser undo): independent
// of heap size, even if the crash interrupted a collection — the
// interrupted collection's state is reconstructed and the collection simply
// continues incrementally afterwards (§3.5.3).

#ifndef SHEAP_RECOVERY_RECOVERY_H_
#define SHEAP_RECOVERY_RECOVERY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "gc/atomic_gc.h"
#include "heap/heap_memory.h"
#include "recovery/checkpoint.h"
#include "heap/space_manager.h"
#include "heap/type_registry.h"
#include "recovery/instant_redo.h"
#include "recovery/redo_executor.h"
#include "recovery/tables.h"
#include "recovery/utt.h"
#include "storage/buffer_pool.h"
#include "storage/env.h"
#include "txn/lock_manager.h"
#include "txn/txn_manager.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"

namespace sheap {

/// Terminal phase of the last recovery. Every path out of recovery — clean
/// completion, instant open, drain completion, or an injected-fault early
/// return — stamps one of these, so no heap is ever left observably
/// half-open: an aborted instant recovery reads as kAborted, never as a
/// still-pending open.
enum class RecoveryOutcome : uint8_t {
  kNone = 0,            // no recovery ran (freshly formatted heap)
  kComplete = 1,        // offline recovery finished inside Open
  kOpenPendingRedo = 2, // instant: heap open, redo plan still draining
  kInstantComplete = 3, // instant: every planned page redone
  kAborted = 4,         // recovery or the instant gate died mid-way
};

inline const char* RecoveryOutcomeName(RecoveryOutcome outcome) {
  switch (outcome) {
    case RecoveryOutcome::kNone: return "none";
    case RecoveryOutcome::kComplete: return "complete";
    case RecoveryOutcome::kOpenPendingRedo: return "open-pending-redo";
    case RecoveryOutcome::kInstantComplete: return "instant-complete";
    case RecoveryOutcome::kAborted: return "aborted";
  }
  return "unknown";
}

struct RecoveryStats {
  uint64_t analysis_records = 0;
  uint64_t redo_records_seen = 0;
  uint64_t redo_records_applied = 0;
  uint64_t undo_records = 0;
  uint64_t clrs_written = 0;
  uint64_t losers_aborted = 0;
  uint64_t winners_closed = 0;
  uint64_t prepared_restored = 0;  // in-doubt 2PC txns kept alive
  uint64_t log_bytes_read = 0;
  uint64_t sim_time_ns = 0;
  // Phase timings (simulated). analysis_ns covers locating the starting
  // checkpoint plus the fused analysis/plan-building scan.
  uint64_t analysis_ns = 0;
  uint64_t redo_ns = 0;
  uint64_t undo_ns = 0;
  /// Worker partitions the redo plan was executed across (1 = serial).
  uint64_t redo_partitions = 0;
  /// Log segments the streaming readers loaded ahead of the decode cursor.
  uint64_t log_segments_prefetched = 0;
  bool used_master_checkpoint = false;
  bool saw_torn_tail = false;
  // Instant recovery (StableHeapOptions::instant_recovery; all zero when
  // recovery ran offline). StableHeap refreshes these from the gate as the
  // drain progresses.
  /// Pages redone on demand at first touch.
  uint64_t ondemand_pages = 0;
  /// Pages redone by the background drain.
  uint64_t drained_pages = 0;
  /// Pages still awaiting redo behind the gate.
  uint64_t pending_pages = 0;
  /// Simulated time until Open returned — with instant recovery this
  /// excludes the drained redo work, which is the whole point.
  uint64_t time_to_open_ns = 0;
  /// Terminal phase; see RecoveryOutcome.
  RecoveryOutcome outcome = RecoveryOutcome::kNone;
};

/// Runs the three recovery phases against a SimEnv's surviving state.
class RecoveryManager {
 public:
  struct Deps {
    LogDevice* device = nullptr;
    LogWriter* log = nullptr;  // for CLRs / end records written during undo
    BufferPool* pool = nullptr;
    HeapMemory* mem = nullptr;
    SpaceManager* spaces = nullptr;
    TypeRegistry* types = nullptr;
    UndoTranslationTable* utt = nullptr;
    TxnManager* txns = nullptr;
    LockManager* locks = nullptr;  // re-acquired for in-doubt 2PC txns
    SimClock* clock = nullptr;
    /// Redo worker partitions (1 = the historical serial path).
    uint32_t recovery_threads = 1;
    /// Instant recovery: when set, Redo installs the fused plan into this
    /// gate instead of executing it, and Recover returns with the heap's
    /// pages redone lazily (see recovery/instant_redo.h). Null = offline.
    InstantRedoManager* instant = nullptr;
  };

  struct Result {
    AtomicGc::RecoveredState gc;
    TxnId next_txn_id = 1;
    std::vector<uint8_t> format_payload;  // kHeapFormat contents, if seen
    RecoveryStats stats;
  };

  explicit RecoveryManager(const Deps& deps) : d_(deps) {}

  /// Run analysis + redo + undo. On return the stable heap state is exactly
  /// the committed state plus any in-progress collection, ready for normal
  /// operation.
  StatusOr<Result> Recover();

 private:
  /// The three phases. Split from Recover so every early return (including
  /// injected-fault crashes between phases) funnels through one place that
  /// stamps a terminal RecoveryOutcome and deactivates the instant gate.
  Status RecoverImpl(Result* result);
  Status FindStartingCheckpoint(CheckpointData* data, Lsn* start_lsn,
                                bool* have_checkpoint, Result* result);
  /// The analysis scan is fused with redo-plan construction: every
  /// redoable record it decodes goes straight into *plan (LSN order), so
  /// the redo phase never re-reads or re-decodes the analysis range.
  Status Analysis(Lsn start_lsn, CheckpointData* data, RedoPlan* plan,
                  Result* result);
  /// Execute redo from the plan (plus a supplementary streamed scan when
  /// the oldest DPT recLSN precedes the analysis start) via RedoExecutor.
  Status Redo(const CheckpointData& data, Lsn analysis_start_lsn,
              RedoPlan* plan, Result* result);
  Status Undo(CheckpointData* data, Result* result);
  /// Rebuild an in-doubt (prepared) transaction: in-memory undo info from
  /// its log chain (addresses translated through the UTT) and its write
  /// locks, so it can be committed or aborted by the coordinator later.
  Status RestorePrepared(TxnId txn_id, const AttEntry& entry,
                         Result* result);

  Deps d_;
};

}  // namespace sheap

#endif  // SHEAP_RECOVERY_RECOVERY_H_
