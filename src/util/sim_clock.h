// SimClock: deterministic simulated-time cost model.
//
// The paper's evaluation claims are about the *shape* of costs (pauses bounded
// vs. growing, recovery flat vs. linear in heap size, synchronous random
// writes vs. none). Wall-clock on a modern laptop with an in-memory "disk"
// would hide all of that, so the storage layer and the collectors charge
// their work to this clock using a parameterized cost model resembling the
// early-90s hardware the thesis targeted (slow rotating disk, ~10 MIPS CPU).
// Benchmarks report simulated milliseconds; tests can assert cost shapes
// deterministically.
//
// Concurrency contract: the clock needs no mutex. In single-mutator mode
// the total is only advanced between low-level actions, and parallel
// workers (redo partitions, flush writers) charge into per-thread sinks
// that the coordinator merges after joining them. With true concurrent
// mutators (StableHeapOptions::mutator_threads > 1) every mutator thread
// runs inside a ThreadChargeScope lane, so the shared counter is still
// quiescent; it is nevertheless a relaxed atomic so stray un-laned charges
// are a benign perturbation rather than a data race. See DESIGN.md §5e/§5i.

#ifndef SHEAP_UTIL_SIM_CLOCK_H_
#define SHEAP_UTIL_SIM_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace sheap {

/// Cost model parameters, in simulated nanoseconds.
struct CostModel {
  /// Random page read/write: seek + rotational latency.
  uint64_t disk_seek_ns = 15'000'000;  // 15 ms
  /// Per-KiB transfer cost once positioned.
  uint64_t disk_transfer_ns_per_kib = 600'000;  // ~1.7 MB/s
  /// Sequential log append per KiB (no seek when appending).
  uint64_t log_append_ns_per_kib = 600'000;
  /// Forcing the log: flush latency floor (one sequential write).
  uint64_t log_force_ns = 8'000'000;  // 8 ms
  /// Cost of taking a VM protection trap (kernel round trip).
  uint64_t trap_ns = 500'000;  // 0.5 ms
  /// Baker software read barrier: the per-reference comparison the thesis
  /// calls too expensive on stock hardware (§3.2.1).
  uint64_t baker_check_ns = 60;
  /// Copying one 8-byte word between spaces.
  uint64_t copy_word_ns = 400;
  /// Examining one word during a scan (pointer test + translate).
  uint64_t scan_word_ns = 300;
  /// One mutator-level heap access (read/write of a slot).
  uint64_t access_ns = 200;
};

/// Accumulates simulated time. Not thread-safe by default; the simulator
/// serializes low-level actions (see workload::Scheduler). The one sanctioned
/// multi-threaded use is ThreadChargeScope below: a worker thread that enters
/// a scope for this clock accrues its charges into a thread-local counter
/// instead of now_ns_, and the coordinator folds the per-worker totals back
/// in after joining (typically as max-over-partitions, modeling parallel
/// hardware under deterministic simulated time).
class SimClock {
 public:
  SimClock() = default;
  explicit SimClock(const CostModel& model) : model_(model) {}

  const CostModel& model() const { return model_; }
  void set_model(const CostModel& model) { model_ = model; }

  uint64_t now_ns() const { return now_ns_.load(std::memory_order_relaxed); }
  void Advance(uint64_t ns) {
    if (tls_sink_clock_ == this) {
      *tls_sink_ns_ += ns;
      return;
    }
    now_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  /// RAII: while alive on a thread, every charge that thread makes against
  /// `clock` lands in *sink_ns rather than the shared counter. Charges
  /// against *other* clocks are unaffected (a worker may legitimately touch
  /// two SimEnvs in tests). Scopes do not nest per thread.
  class ThreadChargeScope {
   public:
    ThreadChargeScope(SimClock* clock, uint64_t* sink_ns) : clock_(clock) {
      tls_sink_clock_ = clock;
      tls_sink_ns_ = sink_ns;
    }
    ~ThreadChargeScope() {
      tls_sink_clock_ = nullptr;
      tls_sink_ns_ = nullptr;
    }
    ThreadChargeScope(const ThreadChargeScope&) = delete;
    ThreadChargeScope& operator=(const ThreadChargeScope&) = delete;

   private:
    SimClock* clock_;
  };

  // Charging helpers used by the storage layer and collectors.
  void ChargeRandomIo(uint64_t bytes) {
    Advance(model_.disk_seek_ns +
            model_.disk_transfer_ns_per_kib * ((bytes + 1023) / 1024));
  }
  void ChargeLogAppend(uint64_t bytes) {
    Advance(model_.log_append_ns_per_kib * ((bytes + 1023) / 1024));
  }
  void ChargeLogForce() { Advance(model_.log_force_ns); }
  void ChargeTrap() { Advance(model_.trap_ns); }
  void ChargeBakerCheck() { Advance(model_.baker_check_ns); }
  void ChargeCopyWords(uint64_t nwords) {
    Advance(model_.copy_word_ns * nwords);
  }
  void ChargeScanWords(uint64_t nwords) {
    Advance(model_.scan_word_ns * nwords);
  }
  void ChargeAccess() { Advance(model_.access_ns); }

  void Reset() { now_ns_.store(0, std::memory_order_relaxed); }

 private:
  static thread_local SimClock* tls_sink_clock_;
  static thread_local uint64_t* tls_sink_ns_;

  CostModel model_;
  std::atomic<uint64_t> now_ns_{0};
};

/// RAII span that measures simulated time elapsed inside a scope.
class SimSpan {
 public:
  explicit SimSpan(const SimClock* clock)
      : clock_(clock), start_ns_(clock->now_ns()) {}
  uint64_t elapsed_ns() const { return clock_->now_ns() - start_ns_; }

 private:
  const SimClock* clock_;
  uint64_t start_ns_;
};

}  // namespace sheap

#endif  // SHEAP_UTIL_SIM_CLOCK_H_
