// Dynamic bitmap used for page-protection bits, pointer maps, and
// dirty-page tracking.

#ifndef SHEAP_UTIL_BITMAP_H_
#define SHEAP_UTIL_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace sheap {

/// Fixed-capacity bitset with dynamic size chosen at construction/Resize.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t n) { Resize(n); }

  void Resize(size_t n) {
    n_ = n;
    words_.assign((n + 63) / 64, 0);
  }

  size_t size() const { return n_; }

  bool Get(size_t i) const {
    SHEAP_DCHECK(i < n_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Set(size_t i) {
    SHEAP_DCHECK(i < n_);
    words_[i >> 6] |= (1ULL << (i & 63));
  }

  void Clear(size_t i) {
    SHEAP_DCHECK(i < n_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  void Assign(size_t i, bool v) {
    if (v) {
      Set(i);
    } else {
      Clear(i);
    }
  }

  void SetAll() {
    for (auto& w : words_) w = ~0ULL;
  }

  void ClearAll() {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits.
  size_t Count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += static_cast<size_t>(__builtin_popcountll(w));
    // Mask out bits beyond n_ (they are never set, but be defensive).
    return c;
  }

  /// Index of first set bit at or after `from`, or size() if none.
  size_t FindFirstSet(size_t from = 0) const {
    for (size_t i = from; i < n_;) {
      uint64_t w = words_[i >> 6] >> (i & 63);
      if (w != 0) {
        return i + static_cast<size_t>(__builtin_ctzll(w));
      }
      i = (i | 63) + 1;
    }
    return n_;
  }

  /// Index of first clear bit at or after `from`, or size() if none.
  /// Word-skipping like FindFirstSet, so a monotone caller pays O(n/64)
  /// total over a full sweep instead of O(n) per query.
  size_t FindFirstUnset(size_t from = 0) const {
    for (size_t i = from; i < n_;) {
      uint64_t w = ~words_[i >> 6] >> (i & 63);
      if (w != 0) {
        const size_t found = i + static_cast<size_t>(__builtin_ctzll(w));
        // Bits past n_ in the last word read as "unset"; clamp them out.
        return found < n_ ? found : n_;
      }
      i = (i | 63) + 1;
    }
    return n_;
  }

 private:
  size_t n_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace sheap

#endif  // SHEAP_UTIL_BITMAP_H_
