#include "util/crc32c.h"

#include <array>

namespace sheap::crc32c {

namespace {

constexpr uint32_t kPoly = 0x82f63b78;  // reflected CRC-32C polynomial

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Extend(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace sheap::crc32c
