#include "util/crc32c.h"

#include <array>
#include <cstring>

namespace sheap::crc32c {

namespace {

constexpr uint32_t kPoly = 0x82f63b78;  // reflected CRC-32C polynomial

// Slice-by-8: table[0] is the classic byte-at-a-time table; table[k] maps a
// byte to its CRC contribution k bytes further along, so eight input bytes
// fold into the accumulator with eight independent lookups per iteration
// instead of eight dependent ones.
std::array<std::array<uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    tables[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = tables[0][i];
    for (int k = 1; k < 8; ++k) {
      crc = tables[0][crc & 0xff] ^ (crc >> 8);
      tables[k][i] = crc;
    }
  }
  return tables;
}

const std::array<std::array<uint32_t, 256>, 8> kTables = MakeTables();

inline uint32_t ExtendByte(uint32_t crc, uint8_t b) {
  return kTables[0][(crc ^ b) & 0xff] ^ (crc >> 8);
}

uint32_t ExtendSliceBy8(uint32_t crc, const uint8_t* p, size_t n) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  // Align to 8 bytes so the word loads below are natural.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = ExtendByte(crc, *p++);
    --n;
  }
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    word ^= crc;  // little-endian: low 4 bytes absorb the accumulator
    crc = kTables[7][word & 0xff] ^ kTables[6][(word >> 8) & 0xff] ^
          kTables[5][(word >> 16) & 0xff] ^ kTables[4][(word >> 24) & 0xff] ^
          kTables[3][(word >> 32) & 0xff] ^ kTables[2][(word >> 40) & 0xff] ^
          kTables[1][(word >> 48) & 0xff] ^ kTables[0][(word >> 56) & 0xff];
    p += 8;
    n -= 8;
  }
#endif  // little-endian
  while (n > 0) {
    crc = ExtendByte(crc, *p++);
    --n;
  }
  return crc;
}

#if defined(__x86_64__) || defined(_M_X64)
#define SHEAP_CRC32C_HW 1

__attribute__((target("sse4.2"))) uint32_t ExtendHardware(uint32_t crc,
                                                          const uint8_t* p,
                                                          size_t n) {
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
    --n;
  }
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc64 = __builtin_ia32_crc32di(crc64, word);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (n > 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
    --n;
  }
  return crc;
}

bool HaveHardwareCrc() { return __builtin_cpu_supports("sse4.2"); }

#endif  // x86_64

using ExtendFn = uint32_t (*)(uint32_t, const uint8_t*, size_t);

ExtendFn ChooseExtend() {
#if defined(SHEAP_CRC32C_HW)
  if (HaveHardwareCrc()) return &ExtendHardware;
#endif
  return &ExtendSliceBy8;
}

const ExtendFn kExtend = ChooseExtend();

}  // namespace

uint32_t Extend(uint32_t crc, const void* data, size_t n) {
  return ~kExtend(~crc, static_cast<const uint8_t*>(data), n);
}

uint32_t ExtendPortable(uint32_t crc, const void* data, size_t n) {
  return ~ExtendSliceBy8(~crc, static_cast<const uint8_t*>(data), n);
}

bool UsingHardwareAcceleration() {
#if defined(SHEAP_CRC32C_HW)
  return kExtend == &ExtendHardware;
#else
  return false;
#endif
}

}  // namespace sheap::crc32c
