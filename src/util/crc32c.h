// CRC-32C (Castagnoli) used to detect torn/corrupt log records and page
// images. Slice-by-8 software implementation with runtime dispatch to the
// SSE4.2 crc32 instruction on x86-64 hosts that have it; all paths produce
// identical checksums (the log format does not depend on the host).

#ifndef SHEAP_UTIL_CRC32C_H_
#define SHEAP_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace sheap::crc32c {

/// Return the CRC-32C of data[0, n), extending an initial crc.
uint32_t Extend(uint32_t crc, const void* data, size_t n);

/// Return the CRC-32C of data[0, n).
inline uint32_t Value(const void* data, size_t n) { return Extend(0, data, n); }

/// Slice-by-8 software path, bypassing hardware dispatch. Exposed so tests
/// can verify the two paths agree byte-for-byte.
uint32_t ExtendPortable(uint32_t crc, const void* data, size_t n);

/// True when Extend dispatches to the SSE4.2 crc32 instruction.
bool UsingHardwareAcceleration();

/// Mask a CRC stored alongside the data it covers, so that computing the CRC
/// of a buffer containing an embedded CRC does not trivially collide
/// (the LevelDB/RocksDB trick).
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8UL;
}

inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8UL;
  return (rot >> 17) | (rot << 15);
}

}  // namespace sheap::crc32c

#endif  // SHEAP_UTIL_CRC32C_H_
