// Little-endian binary encoding helpers for log records and checkpoint
// payloads. Fixed-width and varint codings.

#ifndef SHEAP_UTIL_CODER_H_
#define SHEAP_UTIL_CODER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/check.h"

namespace sheap {

/// Append-only encoder writing into a byte vector.
class Encoder {
 public:
  explicit Encoder(std::vector<uint8_t>* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(v); }
  void PutU16(uint16_t v) { PutFixed(&v, 2); }
  void PutU32(uint32_t v) { PutFixed(&v, 4); }
  void PutU64(uint64_t v) { PutFixed(&v, 8); }

  /// LEB128 unsigned varint.
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      out_->push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out_->push_back(static_cast<uint8_t>(v));
  }

  void PutBytes(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    out_->insert(out_->end(), p, p + n);
  }

  /// Length-prefixed byte string.
  void PutLengthPrefixed(const void* data, size_t n) {
    PutVarint(n);
    PutBytes(data, n);
  }

  size_t size() const { return out_->size(); }

 private:
  void PutFixed(const void* v, size_t n) {
    // Assumes little-endian host (x86/ARM Linux), which the simulator targets.
    PutBytes(v, n);
  }

  std::vector<uint8_t>* out_;
};

/// Sequential decoder over a byte span. All Get* methods fail (return false)
/// rather than read past the end.
class Decoder {
 public:
  Decoder(const uint8_t* data, size_t n) : p_(data), end_(data + n) {}
  explicit Decoder(const std::vector<uint8_t>& buf)
      : Decoder(buf.data(), buf.size()) {}

  bool GetU8(uint8_t* v) { return GetFixed(v, 1); }
  bool GetU16(uint16_t* v) { return GetFixed(v, 2); }
  bool GetU32(uint32_t* v) { return GetFixed(v, 4); }
  bool GetU64(uint64_t* v) { return GetFixed(v, 8); }

  bool GetVarint(uint64_t* v) {
    uint64_t result = 0;
    for (int shift = 0; shift <= 63; shift += 7) {
      if (p_ >= end_) return false;
      uint8_t byte = *p_++;
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        *v = result;
        return true;
      }
    }
    return false;
  }

  bool GetBytes(void* out, size_t n) {
    if (remaining() < n) return false;
    std::memcpy(out, p_, n);
    p_ += n;
    return true;
  }

  bool GetLengthPrefixed(std::vector<uint8_t>* out) {
    uint64_t n;
    if (!GetVarint(&n) || remaining() < n) return false;
    out->assign(p_, p_ + n);
    p_ += n;
    return true;
  }

  /// Skip n bytes.
  bool Skip(size_t n) {
    if (remaining() < n) return false;
    p_ += n;
    return true;
  }

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  const uint8_t* position() const { return p_; }
  bool empty() const { return p_ == end_; }

 private:
  bool GetFixed(void* v, size_t n) {
    if (remaining() < n) return false;
    std::memcpy(v, p_, n);
    p_ += n;
    return true;
  }

  const uint8_t* p_;
  const uint8_t* end_;
};

}  // namespace sheap

#endif  // SHEAP_UTIL_CODER_H_
