#include "util/coder.h"

// Header-only; this TU exists so the build exercises the header standalone.
namespace sheap {}
