#include "util/sim_clock.h"

// Header-only; TU keeps the build graph uniform.
namespace sheap {}
