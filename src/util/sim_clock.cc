#include "util/sim_clock.h"

namespace sheap {

thread_local SimClock* SimClock::tls_sink_clock_ = nullptr;
thread_local uint64_t* SimClock::tls_sink_ns_ = nullptr;

}  // namespace sheap
