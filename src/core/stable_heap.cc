#include "core/stable_heap.h"

#include <algorithm>
#include <thread>

#include "common/check.h"

namespace sheap {

namespace {

// 0 = hardware concurrency; always at least 1, capped at `max_threads`.
uint32_t ResolveThreads(uint32_t requested, uint32_t max_threads) {
  uint32_t n = requested == 0 ? std::thread::hardware_concurrency() : requested;
  if (n == 0) n = 1;
  return std::min(n, max_threads);
}

constexpr uint32_t kFormatMagic = 0x53484650;  // "SHFP"

void EncodeFormatPayload(const StableHeapOptions& opts,
                         std::vector<uint8_t>* out) {
  Encoder enc(out);
  enc.PutU32(kFormatMagic);
  enc.PutVarint(opts.stable_space_pages);
  enc.PutVarint(opts.volatile_space_pages);
  enc.PutVarint(opts.root_slots);
  enc.PutU8(opts.divided_heap ? 1 : 0);
}

Status DecodeFormatPayload(const std::vector<uint8_t>& payload,
                           StableHeapOptions* opts) {
  Decoder dec(payload);
  uint32_t magic;
  if (!dec.GetU32(&magic) || magic != kFormatMagic) {
    return Status::Corruption("bad heap format record");
  }
  uint8_t divided;
  if (!dec.GetVarint(&opts->stable_space_pages) ||
      !dec.GetVarint(&opts->volatile_space_pages) ||
      !dec.GetVarint(&opts->root_slots) || !dec.GetU8(&divided)) {
    return Status::Corruption("bad heap format payload");
  }
  opts->divided_heap = divided != 0;
  return Status::OK();
}

}  // namespace

StableHeap::StableHeap(Env* env, const StableHeapOptions& options)
    : env_(env), options_(options), gate_(options.mutator_threads > 1) {}

StableHeap::~StableHeap() {
  // Balance the BeginConcurrent taken at open (concurrent mode pins the
  // buffer pool against eviction for the heap's lifetime).
  if (pool_concurrent_ && pool_) pool_->EndConcurrent();
}

StatusOr<std::unique_ptr<StableHeap>> StableHeap::Open(
    Env* env, const StableHeapOptions& options) {
  std::unique_ptr<StableHeap> heap(new StableHeap(env, options));
  SHEAP_RETURN_IF_ERROR(heap->Initialize());
  return heap;
}

Status StableHeap::Initialize() {
  SimSpan open_span(env_->clock());
  Status st = InitializeImpl();
  if (!st.ok()) {
    // Terminal outcome on every failed open (satellite of the instant-
    // recovery work): an injected fault anywhere in the open path — the
    // recovery passes, GC resume, the final log force or checkpoint — must
    // not leave the gate half-armed or the stats claiming an open-pending
    // recovery that never opened.
    if (instant_) instant_->Abandon();
    if (recovery_stats_.outcome == RecoveryOutcome::kOpenPendingRedo) {
      recovery_stats_.outcome = RecoveryOutcome::kAborted;
    }
    return st;
  }
  recovery_stats_.time_to_open_ns = open_span.elapsed_ns();
  return Status::OK();
}

Status StableHeap::InitializeImpl() {
#if SHEAP_FAULT_INJECTION
  // A new machine boots on the surviving environment: any latched
  // injected-crash state belongs to the previous incarnation. Armed
  // one-shot faults stay consumed; un-hit faults stay armed (a crash
  // armed at a recovery point fires during the recovery below).
  env_->faults()->OnBoot();
#endif
  log_ = std::make_unique<LogWriter>(env_->log());
  commit_queue_ = std::make_unique<CommitQueue>(
      log_.get(), env_->clock(), options_.group_commit_options);
  // During format/recovery the pool runs with only the WAL-constraint hook;
  // fetch/end-write notifications are installed afterwards.
  BufferPool::Hooks hooks;
  hooks.flush_log_to = [this](Lsn lsn) { return log_->FlushTo(lsn); };
  pool_ = std::make_unique<BufferPool>(env_->disk(),
                                       options_.buffer_pool_frames, hooks);
  pool_->set_flush_writers(ResolveThreads(options_.flush_writer_threads, 64));
  mem_ = std::make_unique<HeapMemory>(pool_.get());
  spaces_ = std::make_unique<SpaceManager>(log_.get(), env_->disk(),
                                           pool_.get());
  txns_ = std::make_unique<TxnManager>(log_.get());

  GcContext ctx;
  ctx.mem = mem_.get();
  ctx.pool = pool_.get();
  ctx.log = log_.get();
  ctx.spaces = spaces_.get();
  ctx.types = &types_;
  ctx.handles = &handles_;
  ctx.txns = txns_.get();
  ctx.locks = &locks_;
  ctx.clock = env_->clock();
  ctx.utt = &utt_;
  ctx.mapping = env_->mapping();

  const bool existing = env_->log()->size() > env_->log()->truncated_prefix();
  if (existing && options_.instant_recovery) {
    // Instant recovery: the gate goes onto the pool's before_pin hook
    // *before* recovery runs, so every page access from here on — undo's
    // CLR writes, GC resume, and eventually the mutator — is uniformly
    // redone on demand. It stays inert until Redo installs the plan.
    InstantRedoManager::Deps ideps;
    ideps.pool = pool_.get();
    ideps.spaces = spaces_.get();
    ideps.clock = env_->clock();
    ideps.faults = env_->faults();
    ideps.drain_threads = ResolveThreads(options_.instant_drain_threads,
                                         RedoExecutor::kMaxPartitions);
    instant_ = std::make_unique<InstantRedoManager>(ideps);
    BufferPool::Hooks gate_hooks;
    gate_hooks.flush_log_to = [this](Lsn lsn) { return log_->FlushTo(lsn); };
    gate_hooks.before_pin = [this](PageId pid) {
      return instant_->OnPageAccess(pid);
    };
    pool_->SetHooks(std::move(gate_hooks));
  }
  if (existing) {
    SHEAP_RETURN_IF_ERROR(RecoverHeap());
    // Geometry comes from the format record; rebuild collectors with it.
  }

  AtomicGc::Options sopts;
  sopts.space_pages = options_.stable_space_pages;
  sopts.root_slots = options_.root_slots;
  sopts.barrier = options_.barrier_mode;
  sopts.durability = options_.gc_durability;
  sopts.threads = ResolveThreads(options_.gc_threads, 64);
  sopts.batch_records = options_.gc_batch_records;
  CopyingGc::Options vopts;
  vopts.space_pages = options_.volatile_space_pages;
  if (!stable_gc_) stable_gc_ = std::make_unique<AtomicGc>(ctx, sopts);
  if (!volatile_gc_) volatile_gc_ = std::make_unique<CopyingGc>(ctx, vopts);

  tracker_ = std::make_unique<StabilityTracker>(mem_.get(), &types_,
                                                env_->clock(), &ls_);
  tracker_->is_volatile = [this](HeapAddr a) {
    return volatile_gc_->Contains(a);
  };
  tracker_->resolve = [this](HeapAddr a) { return ResolveHusk(a); };

  Promoter::Deps pdeps;
  pdeps.mem = mem_.get();
  pdeps.log = log_.get();
  pdeps.txns = txns_.get();
  pdeps.locks = &locks_;
  pdeps.handles = &handles_;
  pdeps.types = &types_;
  pdeps.utt = &utt_;
  pdeps.stable_gc = stable_gc_.get();
  pdeps.volatile_gc = volatile_gc_.get();
  pdeps.remembered = &remembered_;
  pdeps.ls = &ls_;
  pdeps.clock = env_->clock();
  pdeps.method = options_.promotion_method;
  pdeps.pending = &pending_;
  promoter_ = std::make_unique<Promoter>(pdeps);

  WireGcHooks();

  if (!existing) {
    SHEAP_RETURN_IF_ERROR(FormatHeap());
  }
  // The checkpointer embeds the format payload in every checkpoint so that
  // log truncation may drop the original format record.
  std::vector<uint8_t> format_payload;
  EncodeFormatPayload(options_, &format_payload);
  checkpointer_ = std::make_unique<Checkpointer>(
      log_.get(), env_->log(), pool_.get(), txns_.get(), stable_gc_.get(),
      spaces_.get(), &utt_, &types_, env_->clock(),
      std::move(format_payload));
  // Initial-value records of pending (unmaterialized) promotions must
  // survive log truncation until the physical move happens; likewise,
  // under instant recovery, every record a not-yet-redone page still needs.
  checkpointer_->extra_keep_floor = [this]() {
    Lsn floor = pending_.OldestLsn();
    if (instant_) {
      const Lsn gate = instant_->MinPendingRecLsn();
      if (gate != kInvalidLsn && (floor == kInvalidLsn || gate < floor)) {
        floor = gate;
      }
    }
    return floor;
  };
  checkpointer_->extra_dirty_pages =
      [this]() -> std::vector<std::pair<PageId, Lsn>> {
    std::vector<std::pair<PageId, Lsn>> out;
    SHEAP_CHECK_OK(pending_.ForEach(
        [&](HeapAddr s, const PendingMaterializations::Entry& e) {
          const uint64_t bytes = (1 + e.nslots) * kWordSizeBytes;
          for (PageId p = PageOf(s); p <= PageOf(s + bytes - 1); ++p) {
            out.emplace_back(p, e.initial_lsn);
          }
          return Status::OK();
        }));
    if (instant_) {
      // Pages still behind the gate are dirty-in-waiting: a checkpoint
      // taken mid-drain carries them at their original recLSNs, so a crash
      // right after it still redoes them.
      for (const auto& [pid, rec_lsn] : instant_->PendingDirtyPages()) {
        out.emplace_back(pid, rec_lsn);
      }
    }
    return out;
  };
  InstallPoolHooks();
  SHEAP_RETURN_IF_ERROR(checkpointer_->Take());
  if (concurrent()) {
    // True concurrent mutators (DESIGN.md §5i). Armed only after the open
    // path completes, so format/recovery stay on the deterministic
    // single-thread code paths:
    //   * instant recovery's incremental drain is single-thread machinery
    //     (Begin-side stepping); finish the backlog now,
    //   * eviction decisions depend on LRU order, which is schedule-
    //     dependent under concurrency — freeze eviction for the heap's
    //     lifetime (EndConcurrent in the destructor rebuilds determinism
    //     for anyone reusing the pool),
    //   * the collector asserts the gate is held exclusively around every
    //     structural transition,
    //   * commit enqueue switches to the lock-free path.
    if (instant_ && instant_->active()) {
      SHEAP_RETURN_IF_ERROR(instant_->DrainAll());
    }
    pool_->BeginConcurrent();
    pool_concurrent_ = true;
    stable_gc_->AttachGate(&gate_);
    commit_queue_->SetConcurrent(true);
  }
  return Status::OK();
}

void StableHeap::WireGcHooks() {
  stable_gc_->on_object_moved = [this](HeapAddr from, HeapAddr to,
                                       uint64_t /*total_words*/) {
    // May fire from a read-barrier trap under gc_mu_ while another mutator
    // is inside the side-table bookkeeping (gc_mu_ ranks above side_mu_).
    MutexLock side(&side_mu_);
    remembered_.RekeyObject(from, to);
  };
  stable_gc_->extra_roots =
      [this](const std::function<StatusOr<HeapAddr>(HeapAddr)>& translate) {
        return ScanVolatileAreaAsRoots(translate);
      };
  stable_gc_->before_flip = [this]() { return MaterializePending(); };
  stable_gc_->before_complete = [this]() -> Status {
    if (!options_.divided_heap) return Status::OK();
    // Repair or retire promotion husks while from-space is still readable.
    return volatile_gc_->FixHusks(
        [this](HeapAddr target) -> StatusOr<HeapAddr> {
          while (stable_gc_->InFromSpace(target)) {
            SHEAP_ASSIGN_OR_RETURN(uint64_t w, mem_->ReadWord(target));
            if (!IsForwardWord(w)) return kNullAddr;  // garbage target
            target = ForwardTarget(w);
          }
          return target;
        });
  };
  volatile_gc_->on_object_moved = [this](HeapAddr from, HeapAddr to,
                                         uint64_t /*total_words*/) {
    MutexLock side(&side_mu_);
    ls_.Rekey(from, to);
  };
  volatile_gc_->extra_roots = [this](const RootTranslator& translate) {
    return VolatileExtraRoots(translate);
  };
}

void StableHeap::InstallPoolHooks() {
  BufferPool::Hooks hooks;
  hooks.flush_log_to = [this](Lsn lsn) { return log_->FlushTo(lsn); };
  hooks.on_page_fetch = [this](PageId page) {
    LogRecord rec;
    rec.type = RecordType::kPageFetch;
    rec.page = page;
    log_->Append(&rec);
  };
  hooks.on_end_write = [this](PageId page) {
    LogRecord rec;
    rec.type = RecordType::kEndWrite;
    rec.page = page;
    log_->Append(&rec);
  };
  if (instant_) {
    hooks.before_pin = [this](PageId pid) {
      return instant_->OnPageAccess(pid);
    };
  }
  pool_->SetHooks(std::move(hooks));
}

Status StableHeap::FormatHeap() {
  LogRecord rec;
  rec.type = RecordType::kHeapFormat;
  EncodeFormatPayload(options_, &rec.payload);
  log_->Append(&rec);
  SHEAP_RETURN_IF_ERROR(stable_gc_->Format());
  if (options_.divided_heap) {
    SHEAP_RETURN_IF_ERROR(volatile_gc_->Format());
  }
  return log_->Force();
}

Status StableHeap::RecoverHeap() {
  RecoveryManager::Deps deps;
  deps.device = env_->log();
  deps.log = log_.get();
  deps.pool = pool_.get();
  deps.mem = mem_.get();
  deps.spaces = spaces_.get();
  deps.types = &types_;
  deps.utt = &utt_;
  deps.txns = txns_.get();
  deps.locks = &locks_;
  deps.clock = env_->clock();
  deps.recovery_threads =
      ResolveThreads(options_.recovery_threads, RedoExecutor::kMaxPartitions);
  deps.instant = instant_.get();
  RecoveryManager recovery(deps);
  // Pessimistic terminal stamp: any failure from here to the end of the
  // open path (an injected crash between recovery passes, a GC-resume or
  // log-force fault) reads as an aborted recovery, never as a half-open
  // heap. Overwritten by the real outcome on success.
  recovery_stats_.outcome = RecoveryOutcome::kAborted;
  SHEAP_ASSIGN_OR_RETURN(RecoveryManager::Result result, recovery.Recover());
  recovery_stats_ = result.stats;

  if (result.format_payload.empty()) {
    return Status::Corruption("no heap found in log");
  }
  SHEAP_RETURN_IF_ERROR(
      DecodeFormatPayload(result.format_payload, &options_));

  GcContext ctx;
  ctx.mem = mem_.get();
  ctx.pool = pool_.get();
  ctx.log = log_.get();
  ctx.spaces = spaces_.get();
  ctx.types = &types_;
  ctx.handles = &handles_;
  ctx.txns = txns_.get();
  ctx.locks = &locks_;
  ctx.clock = env_->clock();
  ctx.utt = &utt_;
  ctx.mapping = env_->mapping();
  AtomicGc::Options sopts;
  sopts.space_pages = options_.stable_space_pages;
  sopts.root_slots = options_.root_slots;
  sopts.barrier = options_.barrier_mode;
  sopts.durability = options_.gc_durability;
  sopts.threads = ResolveThreads(options_.gc_threads, 64);
  sopts.batch_records = options_.gc_batch_records;
  stable_gc_ = std::make_unique<AtomicGc>(ctx, sopts);
  stable_gc_->InstallRecovered(std::move(result.gc));
  SHEAP_RETURN_IF_ERROR(stable_gc_->ResumeAfterRecovery());

  CopyingGc::Options vopts;
  vopts.space_pages = options_.volatile_space_pages;
  volatile_gc_ = std::make_unique<CopyingGc>(ctx, vopts);

  txns_->BumpNextId(result.next_txn_id == 0 ? 0 : result.next_txn_id - 1);

  // The volatile area does not survive a crash (§2.1): free any volatile
  // spaces and start fresh.
  std::vector<SpaceId> stale;
  for (const Space& sp : spaces_->spaces()) {
    if (sp.area == Area::kVolatile && !sp.freed) stale.push_back(sp.id);
  }
  for (SpaceId id : stale) {
    SHEAP_RETURN_IF_ERROR(spaces_->Free(id));
  }
  if (options_.divided_heap) {
    SHEAP_RETURN_IF_ERROR(volatile_gc_->Format());
  }
  return log_->Force();
}

Status StableHeap::CheckUsable() const {
  if (crashed_) return Status::Crashed("heap crashed; reopen to recover");
#if SHEAP_FAULT_INJECTION
  if (env_->faults()->crash_fired()) {
    return Status::Crashed("heap crashed at fault point " +
                           env_->faults()->crash_point() +
                           "; reopen to recover");
  }
#endif
  return Status::OK();
}

// --------------------------------------------------------------- schema

StatusOr<ClassId> StableHeap::RegisterClass(
    const std::vector<bool>& pointer_map) {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  // Schema changes are rare and touch the append-only registry that GC
  // workers read without locks; quiesce every mutator.
  MutatorGate::ExclusiveSection exclusive(&gate_);
  SHEAP_ASSIGN_OR_RETURN(ClassId id, types_.Register(pointer_map));
  LogRecord rec;
  rec.type = RecordType::kClassDef;
  rec.aux = id;
  rec.count = pointer_map.size();
  rec.contents = types_.EncodeMap(id);
  log_->Append(&rec);
  // Schema definitions are durable immediately: heap contents allocated
  // under a class would be unparseable without its pointer map.
  SHEAP_RETURN_IF_ERROR(log_->Force());
  DrainCommitQueue();
  return id;
}

// --------------------------------------------------------- transactions

StatusOr<TxnId> StableHeap::Begin() {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  if (!concurrent()) {
    SHEAP_RETURN_IF_ERROR(StepInstantDrain());
    Txn* txn = txns_->Begin();
    return txn->id;
  }
  // Concurrent mode: the instant-recovery backlog was drained at open, so
  // no drain stepping here. Begin is a shared action: txn-id allocation is
  // a fetch_add and the manager's shards take their own mutexes.
  MutatorGate::SharedSection shared(&gate_);
  Txn* txn = txns_->Begin();
  return txn->id;
}

StatusOr<Txn*> StableHeap::FindActive(TxnId txn_id) {
  Txn* txn = txns_->Find(txn_id);
  if (txn == nullptr || txn->state != TxnState::kActive) {
    return Status::Aborted("transaction is not active");
  }
  return txn;
}

Status StableHeap::Commit(TxnId txn_id) {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  if (!concurrent()) {
    SHEAP_RETURN_IF_ERROR(StepInstantDrain());
    return CommitImpl(txn_id);
  }
  // Concurrent commit. The common case — no promotion work — runs entirely
  // inside a shared section: the commit record is appended under the log's
  // own mutex and the transaction joins the group-commit batch through the
  // lock-free queue. Only a commit that must move newly stable objects
  // (divided heap, non-empty remembered slots) takes the gate exclusively,
  // because promotion rewrites heap pages and collector state.
  {
    MutatorGate::SharedSection shared(&gate_);
    if (commit_queue_->ConsumeCompleted(txn_id)) return Status::OK();
    if (commit_queue_->IsWaiter(txn_id)) {
      return GroupCommitWait(txn_id, /*retry=*/true);
    }
    // A concurrent leader may have completed this txn between the two
    // checks above; re-check before concluding it is unknown. After this
    // point it cannot become completed behind our back: only the owning
    // thread enqueues it.
    if (commit_queue_->ConsumeCompleted(txn_id)) return Status::OK();
    bool needs_promotion = false;
    if (options_.divided_heap) {
      MutexLock side(&side_mu_);
      needs_promotion = !remembered_.SlotsOf(txn_id).empty();
    }
    if (!needs_promotion) {
      SHEAP_ASSIGN_OR_RETURN(Txn * txn, FindActive(txn_id));
      txn->state = TxnState::kCommitting;
      LogRecord rec;
      rec.type = RecordType::kCommit;
      const Lsn commit_lsn = txns_->AppendChained(txn, &rec);
      // Crash window: commit spooled but not forced (concurrent fast path;
      // the single-thread path's window is "txn.commit.logged").
      SHEAP_FAULT_POINT(env_->faults(), "txn.mtcommit.logged");
      if (options_.group_commit) {
        commit_queue_->Enqueue(txn_id, commit_lsn);
        return GroupCommitWait(txn_id, /*retry=*/false);
      }
      if (options_.force_on_commit) {
        SHEAP_RETURN_IF_ERROR(log_->Force());
        SHEAP_FAULT_POINT(env_->faults(), "txn.mtcommit.forced");
      }
      txn->state = TxnState::kCommitted;
      return FinishTxn(txn_id);
    }
  }
  MutatorGate::ExclusiveSection exclusive(&gate_);
  return CommitImpl(txn_id);
}

Status StableHeap::CommitImpl(TxnId txn_id) {
  // Group-commit retries: a transaction whose earlier Commit returned Busy
  // calls again. It is either completed (a leader or piggyback made it
  // durable and ran FinishTxn) or still waiting on the open batch.
  if (commit_queue_->ConsumeCompleted(txn_id)) return Status::OK();
  if (commit_queue_->IsWaiter(txn_id)) {
    return GroupCommitWait(txn_id, /*retry=*/true);
  }
  SHEAP_ASSIGN_OR_RETURN(Txn * txn, FindActive(txn_id));
  txn->state = TxnState::kCommitting;

  // Newly stable objects move to the stable area before the commit record
  // (§5.2): if the commit record survives, so does the promotion.
  if (options_.divided_heap) {
    Status promoted = promoter_->PromoteAtCommit(txn);
    if (promoted.IsOutOfSpace() && options_.auto_collect) {
      // Promotion is all-or-nothing (capacity precheck), so it is safe to
      // reclaim the stable area and retry.
      SHEAP_RETURN_IF_ERROR(stable_gc_->CollectFully());
      promoted = promoter_->PromoteAtCommit(txn);
    }
    SHEAP_RETURN_IF_ERROR(promoted);
    // Crash window: promotion copies spooled, commit record not.
    SHEAP_FAULT_POINT(env_->faults(), "txn.commit.promoted");
  }

  LogRecord rec;
  rec.type = RecordType::kCommit;
  const Lsn commit_lsn = txns_->AppendChained(txn, &rec);
  // Crash window: commit spooled but not forced — the transaction must
  // abort at recovery unless a later flush happened to carry it out.
  SHEAP_FAULT_POINT(env_->faults(), "txn.commit.logged");
  if (options_.group_commit) {
    commit_queue_->Enqueue(txn_id, commit_lsn);
    return GroupCommitWait(txn_id, /*retry=*/false);
  }
  if (options_.force_on_commit) {
    SHEAP_RETURN_IF_ERROR(log_->Force());
    // Crash window: commit durable, end record and lock release lost.
    SHEAP_FAULT_POINT(env_->faults(), "txn.commit.forced");
  }
  txn->state = TxnState::kCommitted;
  return FinishTxn(txn_id);
}

void StableHeap::CompleteGroupCommit(TxnId txn_id) {
  Txn* txn = txns_->Find(txn_id);
  SHEAP_CHECK(txn != nullptr && txn->state == TxnState::kCommitting);
  txn->state = TxnState::kCommitted;
  SHEAP_CHECK_OK(FinishTxn(txn_id));
}

Status StableHeap::GroupCommitWait(TxnId txn_id, bool retry) {
  auto on_durable = [this](TxnId id) { CompleteGroupCommit(id); };
  if (retry) {
    // A barrier raised since the last attempt (WAL flush, another force)
    // may already cover this waiter.
    commit_queue_->DrainDurable(on_durable);
    if (commit_queue_->ConsumeCompleted(txn_id)) return Status::OK();
    // Each retry re-checks the queue; charging it advances a lone
    // committer's clock toward the max_delay_ns deadline.
    commit_queue_->ChargePoll();
  }
  if (concurrent()) {
    // Leader election and batch close happen in one critical section under
    // the queue's consumer mutex — two threads observing a closeable batch
    // cannot both force it.
    bool led = false;
    SHEAP_RETURN_IF_ERROR(commit_queue_->LeadIfReady(on_durable, &led));
    if (commit_queue_->ConsumeCompleted(txn_id)) return Status::OK();
    return Status::Busy("commit pending: group-commit batch open");
  }
  if (commit_queue_->ShouldClose()) {
    // This caller is the batch leader: one force covers every waiter.
    SHEAP_RETURN_IF_ERROR(commit_queue_->CloseBatch(on_durable));
    if (commit_queue_->ConsumeCompleted(txn_id)) return Status::OK();
  }
  return Status::Busy("commit pending: group-commit batch open");
}

void StableHeap::DrainCommitQueue() {
  if (commit_queue_->Empty()) return;
  commit_queue_->DrainDurable([this](TxnId id) { CompleteGroupCommit(id); });
}

Status StableHeap::FinishTxn(TxnId txn_id) {
  locks_.ReleaseAll(txn_id);
  handles_.ReleaseTxn(txn_id);
  {
    // Side tables are plain maps shared by every committer (lock rank:
    // below the queue's consumer mutex — FinishTxn runs from batch close).
    MutexLock side(&side_mu_);
    remembered_.EraseTxn(txn_id);
    ls_.EraseTxn(txn_id);
    utt_.OnTxnEnd(txn_id);
  }

  LogRecord end;
  end.type = RecordType::kEnd;
  end.txn_id = txn_id;
  log_->Append(&end);
  txns_->Remove(txn_id);
  return Status::OK();
}

Status StableHeap::UndoTxn(Txn* txn) {
  // Walk the in-memory undo information backwards (§2.2.3). Entries were
  // rewritten in place by every flip and promotion, so no translation is
  // needed here — that is the point of treating undo info as GC roots.
  std::vector<Lsn> logged_lsns;
  for (const TxnUpdate& e : txn->updates) {
    if (e.logged) logged_lsns.push_back(e.lsn);
  }
  size_t logged_remaining = logged_lsns.size();
  for (auto it = txn->updates.rbegin(); it != txn->updates.rend(); ++it) {
    const TxnUpdate& e = *it;
    const HeapAddr slot_addr = SlotAddr(e.obj_base, e.slot);
    const HeapAddr phys_addr = PhysSlotAddr(slot_addr);
    if (e.logged) {
      --logged_remaining;
      const Lsn undo_next =
          logged_remaining > 0 ? logged_lsns[logged_remaining - 1]
                               : kInvalidLsn;
      LogRecord clr;
      clr.type = RecordType::kClr;
      clr.undo_next_lsn = undo_next;
      clr.addr = slot_addr;
      clr.new_word = e.old_word;
      clr.aux = e.is_pointer ? LogRecord::kFlagPointer : 0;
      const Lsn lsn = txns_->AppendChained(txn, &clr);
      if (phys_addr != slot_addr) {
        SHEAP_RETURN_IF_ERROR(
            mem_->WriteWordUnlogged(phys_addr, e.old_word));
      } else {
        SHEAP_RETURN_IF_ERROR(
            mem_->WriteWordLogged(slot_addr, e.old_word, lsn));
      }
    } else {
      SHEAP_RETURN_IF_ERROR(
          mem_->WriteWordUnlogged(phys_addr, e.old_word));
    }
  }
  return Status::OK();
}

Status StableHeap::Abort(TxnId txn_id) {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  // Undo writes only touch slots this transaction still write-locks.
  MutatorGate::SharedSection shared(&gate_);
  Txn* txn = txns_->Find(txn_id);
  if (txn == nullptr) return Status::Aborted("unknown transaction");
  if (txn->state != TxnState::kActive) {
    return Status::Aborted("transaction is not active");
  }
  txn->state = TxnState::kAborting;

  LogRecord rec;
  rec.type = RecordType::kAbortTxn;
  txns_->AppendChained(txn, &rec);
  // Crash window: abort noted in the (volatile) log, no CLR written yet —
  // recovery undoes the whole transaction itself.
  SHEAP_FAULT_POINT(env_->faults(), "txn.abort.logged");
  SHEAP_RETURN_IF_ERROR(UndoTxn(txn));
  txn->state = TxnState::kAborted;
  return FinishTxn(txn_id);
}

Status StableHeap::Prepare(TxnId txn_id, uint64_t gtid) {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  // Prepare may promote (move objects between areas); exclusive.
  MutatorGate::ExclusiveSection exclusive(&gate_);
  SHEAP_ASSIGN_OR_RETURN(Txn * txn, FindActive(txn_id));

  // Pre-commit work happens at prepare: if the coordinator decides commit,
  // only the kCommit record remains to be written.
  if (options_.divided_heap) {
    Status promoted = promoter_->PromoteAtCommit(txn);
    if (promoted.IsOutOfSpace() && options_.auto_collect) {
      SHEAP_RETURN_IF_ERROR(stable_gc_->CollectFully());
      promoted = promoter_->PromoteAtCommit(txn);
    }
    SHEAP_RETURN_IF_ERROR(promoted);
  }

  LogRecord rec;
  rec.type = RecordType::kPrepare;
  rec.aux = gtid;
  txns_->AppendChained(txn, &rec);
  SHEAP_RETURN_IF_ERROR(log_->Force());  // the vote must be durable
  // The prepare force also covers any queued group-commit waiters whose
  // commit records preceded it (piggybacking).
  DrainCommitQueue();
  // Crash window: the vote is durable — recovery must restore the
  // transaction in doubt, with its locks.
  SHEAP_FAULT_POINT(env_->faults(), "txn.prepare.forced");
  txn->state = TxnState::kPrepared;
  txn->gtid = gtid;

  // Local references die; the locks and undo information stay until the
  // coordinator decides.
  handles_.ReleaseTxn(txn_id);
  remembered_.EraseTxn(txn_id);
  ls_.EraseTxn(txn_id);
  return Status::OK();
}

Status StableHeap::CommitPrepared(TxnId txn_id) {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  MutatorGate::ExclusiveSection exclusive(&gate_);
  if (options_.group_commit) {
    // Same Busy retry protocol as Commit: a prepared transaction whose
    // earlier CommitPrepared returned Busy calls again.
    if (commit_queue_->ConsumeCompleted(txn_id)) return Status::OK();
    if (commit_queue_->IsWaiter(txn_id)) {
      return GroupCommitWait(txn_id, /*retry=*/true);
    }
  }
  Txn* txn = txns_->Find(txn_id);
  if (txn == nullptr || txn->state != TxnState::kPrepared) {
    return Status::Aborted("transaction is not in doubt");
  }
  LogRecord rec;
  rec.type = RecordType::kCommit;
  const Lsn commit_lsn = txns_->AppendChained(txn, &rec);
  if (options_.group_commit) {
    // 2PC decision application piggybacks on group commit: the commit
    // record joins the queue and is forced by the next batch leader (or an
    // unrelated barrier), so a cross-shard commit costs at most one forced
    // batch per participant. Crash before the force leaves the transaction
    // in doubt; the coordinator's decision log re-commits it on reopen.
    txn->state = TxnState::kCommitting;
    commit_queue_->Enqueue(txn_id, commit_lsn);
    return GroupCommitWait(txn_id, /*retry=*/false);
  }
  SHEAP_RETURN_IF_ERROR(log_->Force());
  DrainCommitQueue();
  txn->state = TxnState::kCommitted;
  return FinishTxn(txn_id);
}

Status StableHeap::AbortPrepared(TxnId txn_id) {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  MutatorGate::ExclusiveSection exclusive(&gate_);
  Txn* txn = txns_->Find(txn_id);
  if (txn == nullptr || txn->state != TxnState::kPrepared) {
    return Status::Aborted("transaction is not in doubt");
  }
  txn->state = TxnState::kAborting;
  LogRecord rec;
  rec.type = RecordType::kAbortTxn;
  txns_->AppendChained(txn, &rec);
  SHEAP_RETURN_IF_ERROR(UndoTxn(txn));
  txn->state = TxnState::kAborted;
  return FinishTxn(txn_id);
}

std::vector<std::pair<TxnId, uint64_t>> StableHeap::InDoubtTransactions()
    const {
  std::vector<std::pair<TxnId, uint64_t>> out;
  auto* txns = const_cast<TxnManager*>(txns_.get());
  for (Txn* txn : txns->ActiveTxns()) {
    if (txn->state == TxnState::kPrepared) {
      out.emplace_back(txn->id, txn->gtid);
    }
  }
  return out;
}

// ------------------------------------------------------------- objects

Status StableHeap::ValidateClass(ClassId cls, uint64_t nslots) const {
  if (!types_.IsRegistered(cls)) {
    return Status::InvalidArgument("unregistered class");
  }
  const uint64_t fixed = types_.FixedSlots(cls);
  if (fixed != 0 && fixed != nslots) {
    return Status::InvalidArgument("slot count does not match class");
  }
  if (nslots == 0 && fixed == 0 && cls >= kFirstUserClass) {
    return Status::InvalidArgument("record class with zero slots");
  }
  return Status::OK();
}

StatusOr<HeapAddr> StableHeap::AllocateStableRaw(Txn* txn, ClassId cls,
                                                 uint64_t nslots) {
  auto result = stable_gc_->AllocateObject(txn, cls, nslots);
  if (result.ok() || !result.status().IsOutOfSpace() ||
      !options_.auto_collect) {
    return result;
  }
  // Out of space: finish any in-flight collection, then flip, then retry.
  if (stable_gc_->collecting()) {
    SHEAP_RETURN_IF_ERROR(stable_gc_->FinishCollection());
  }
  if (options_.incremental_gc) {
    SHEAP_RETURN_IF_ERROR(stable_gc_->Flip());
  } else {
    SHEAP_RETURN_IF_ERROR(stable_gc_->CollectFully());
  }
  return stable_gc_->AllocateObject(txn, cls, nslots);
}

StatusOr<HeapAddr> StableHeap::AllocateVolatileRaw(Txn* txn, ClassId cls,
                                                   uint64_t nslots) {
  auto result = volatile_gc_->AllocateObject(txn, cls, nslots);
  if (result.ok() || !result.status().IsOutOfSpace() ||
      !options_.auto_collect) {
    return result;
  }
  SHEAP_RETURN_IF_ERROR(MaterializePending());
  SHEAP_RETURN_IF_ERROR(volatile_gc_->Collect());
  return volatile_gc_->AllocateObject(txn, cls, nslots);
}

StatusOr<Ref> StableHeap::Allocate(TxnId txn_id, ClassId cls,
                                   uint64_t nslots) {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  // Allocation moves the space allocation pointer and may step or flip the
  // collector (auto_collect / pacing); exclusive keeps those transitions
  // race-free without per-pointer synchronization in the allocators.
  MutatorGate::ExclusiveSection exclusive(&gate_);
  SHEAP_ASSIGN_OR_RETURN(Txn * txn, FindActive(txn_id));
  SHEAP_RETURN_IF_ERROR(ValidateClass(cls, nslots));
  SHEAP_RETURN_IF_ERROR(MaybeStepCollector((1 + nslots) * kWordSizeBytes));
  HeapAddr base;
  if (options_.divided_heap) {
    SHEAP_ASSIGN_OR_RETURN(base, AllocateVolatileRaw(txn, cls, nslots));
  } else {
    SHEAP_ASSIGN_OR_RETURN(base, AllocateStableRaw(txn, cls, nslots));
  }
  SHEAP_RETURN_IF_ERROR(locks_.AcquireWrite(txn_id, base));
  env_->clock()->ChargeAccess();
  return handles_.Create(txn_id, base);
}

StatusOr<Ref> StableHeap::AllocateStable(TxnId txn_id, ClassId cls,
                                         uint64_t nslots) {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  MutatorGate::ExclusiveSection exclusive(&gate_);
  SHEAP_ASSIGN_OR_RETURN(Txn * txn, FindActive(txn_id));
  SHEAP_RETURN_IF_ERROR(ValidateClass(cls, nslots));
  SHEAP_RETURN_IF_ERROR(MaybeStepCollector((1 + nslots) * kWordSizeBytes));
  SHEAP_ASSIGN_OR_RETURN(HeapAddr base,
                         AllocateStableRaw(txn, cls, nslots));
  SHEAP_RETURN_IF_ERROR(locks_.AcquireWrite(txn_id, base));
  env_->clock()->ChargeAccess();
  return handles_.Create(txn_id, base);
}

Status StableHeap::MaybeStepCollector(uint64_t upcoming_alloc_bytes) {
  if (!options_.incremental_gc || !stable_gc_->collecting()) {
    return Status::OK();
  }
  const uint64_t pages =
      options_.gc_adaptive_pacing
          ? stable_gc_->PacingBudgetPages(upcoming_alloc_bytes)
          : options_.gc_step_pages;
  if (pages > 0) {
    SHEAP_RETURN_IF_ERROR(stable_gc_->Step(pages).status());
  }
  return Status::OK();
}

StatusOr<HeapAddr> StableHeap::ResolveRef(TxnId txn, Ref ref) const {
  auto addr = handles_.Get(ref);
  if (!addr.ok()) return addr.status();
  auto owner = handles_.Owner(ref);
  if (!owner.ok()) return owner.status();
  if (*owner != kNoTxn && *owner != txn) {
    return Status::InvalidArgument("handle owned by another transaction");
  }
  return *addr;
}

StatusOr<HeapAddr> StableHeap::ResolveHusk(HeapAddr a) {
  if (a == kNullAddr || !volatile_gc_->Contains(a)) return a;
  SHEAP_ASSIGN_OR_RETURN(uint64_t w, mem_->ReadWord(a));
  if (IsForwardWord(w)) return ForwardTarget(w);
  return a;
}

bool StableHeap::InStableArea(HeapAddr a) const {
  const Space* sp = spaces_->Containing(a);
  return sp != nullptr && sp->area == Area::kStable;
}

Status StableHeap::GcEnsureAccess(HeapAddr a) {
  // Read-barrier traps mutate collector state (scan bitmap, copy frontier,
  // barrier cache) and must be serialized across mutator threads. The
  // unlocked collecting() read is stable inside a shared section:
  // collections start and complete only under the exclusive gate, and the
  // trap path never completes a collection (Complete runs only from Step).
  if (concurrent() && stable_gc_->collecting()) {
    MutexLock gc(&gc_mu_);
    return stable_gc_->EnsureAccess(a);
  }
  return stable_gc_->EnsureAccess(a);
}

Status StableHeap::GcEnsureSlotAccess(HeapAddr slot_addr, bool is_pointer) {
  if (concurrent() && stable_gc_->collecting()) {
    MutexLock gc(&gc_mu_);
    return stable_gc_->EnsureSlotAccess(slot_addr, is_pointer);
  }
  return stable_gc_->EnsureSlotAccess(slot_addr, is_pointer);
}

StatusOr<ObjectHeader> StableHeap::CheckedHeader(HeapAddr base,
                                                 uint64_t slot) {
  SHEAP_RETURN_IF_ERROR(GcEnsureAccess(base));
  ObjectHeader hdr;
  if (const auto* entry = pending_.Lookup(base)) {
    // Method-2 promotion: the header is synthesized until materialization.
    hdr.class_id = entry->cls;
    hdr.nslots = entry->nslots;
  } else {
    SHEAP_ASSIGN_OR_RETURN(hdr, mem_->ReadHeader(base));
  }
  if (slot >= hdr.nslots) {
    return Status::InvalidArgument("slot index out of range");
  }
  return hdr;
}

HeapAddr StableHeap::PhysSlotAddr(HeapAddr slot_addr) const {
  const HeapAddr redirected = pending_.Redirect(slot_addr);
  return redirected == kNullAddr ? slot_addr : redirected;
}

StatusOr<uint64_t> StableHeap::ReadSlotInternal(Txn* txn, HeapAddr base,
                                                uint64_t slot,
                                                bool want_pointer) {
  SHEAP_RETURN_IF_ERROR(locks_.AcquireRead(txn->id, base));
  SHEAP_ASSIGN_OR_RETURN(ObjectHeader hdr, CheckedHeader(base, slot));
  if (types_.IsPointerSlot(hdr.class_id, slot) != want_pointer) {
    return Status::InvalidArgument(want_pointer
                                       ? "slot holds a scalar, not a pointer"
                                       : "slot holds a pointer, not a scalar");
  }
  const HeapAddr slot_addr = SlotAddr(base, slot);
  SHEAP_RETURN_IF_ERROR(GcEnsureSlotAccess(slot_addr, want_pointer));
  SHEAP_ASSIGN_OR_RETURN(uint64_t v,
                         mem_->ReadWord(PhysSlotAddr(slot_addr)));
  env_->clock()->ChargeAccess();
  return v;
}

Status StableHeap::WriteSlotInternal(Txn* txn, HeapAddr base, uint64_t slot,
                                     uint64_t value, bool is_pointer) {
  SHEAP_RETURN_IF_ERROR(locks_.AcquireWrite(txn->id, base));
  SHEAP_ASSIGN_OR_RETURN(ObjectHeader hdr, CheckedHeader(base, slot));
  if (types_.IsPointerSlot(hdr.class_id, slot) != is_pointer) {
    return Status::InvalidArgument("slot kind mismatch");
  }
  const HeapAddr slot_addr = SlotAddr(base, slot);
  SHEAP_RETURN_IF_ERROR(GcEnsureSlotAccess(slot_addr, is_pointer));
  const HeapAddr phys_addr = PhysSlotAddr(slot_addr);
  SHEAP_ASSIGN_OR_RETURN(uint64_t old, mem_->ReadWord(phys_addr));

  const bool stable = InStableArea(base);
  TxnUpdate e;
  e.obj_base = base;
  e.slot = slot;
  e.old_word = old;
  e.new_word = value;
  e.is_pointer = is_pointer;
  if (stable) {
    // Write-ahead log protocol (§2.2.3): the redo/undo record is spooled
    // and the modification performed while the page is pinned (one action).
    LogRecord rec;
    rec.type = RecordType::kUpdate;
    rec.addr = slot_addr;
    rec.addr2 = base;
    rec.old_word = old;
    rec.new_word = value;
    rec.aux = is_pointer ? LogRecord::kFlagPointer : 0;
    const Lsn lsn = txns_->AppendChained(txn, &rec);
    if (phys_addr != slot_addr) {
      // Pending (method-2) object: the record targets the stable address,
      // the physical body still lives at the volatile source.
      SHEAP_RETURN_IF_ERROR(mem_->WriteWordUnlogged(phys_addr, value));
    } else {
      SHEAP_RETURN_IF_ERROR(mem_->WriteWordLogged(slot_addr, value, lsn));
    }
    e.logged = true;
    e.lsn = lsn;
  } else {
    SHEAP_RETURN_IF_ERROR(mem_->WriteWordUnlogged(phys_addr, value));
  }
  txn->updates.push_back(e);

  if (is_pointer && options_.divided_heap) {
    // Remembered set and stability tracking share the side tables with
    // every other writer; one mutex covers the whole bookkeeping step.
    MutexLock side(&side_mu_);
    // Remembered set: stable slots holding volatile pointers (§5.3).
    if (stable) {
      if (value != kNullAddr && volatile_gc_->Contains(value)) {
        remembered_.Put(base, slot, txn->id);
      } else {
        remembered_.Erase(base, slot);
      }
    }
    // Concurrent tracking of newly stable objects (§5.1).
    SHEAP_RETURN_IF_ERROR(
        tracker_->OnPointerWrite(*txn, base, value, stable));
  }
  env_->clock()->ChargeAccess();
  return Status::OK();
}

StatusOr<uint64_t> StableHeap::ReadScalar(TxnId txn_id, Ref ref,
                                          uint64_t slot) {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  MutatorGate::SharedSection shared(&gate_);
  SHEAP_ASSIGN_OR_RETURN(Txn * txn, FindActive(txn_id));
  SHEAP_ASSIGN_OR_RETURN(HeapAddr base, ResolveRef(txn_id, ref));
  return ReadSlotInternal(txn, base, slot, /*want_pointer=*/false);
}

StatusOr<Ref> StableHeap::ReadRef(TxnId txn_id, Ref ref, uint64_t slot) {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  MutatorGate::SharedSection shared(&gate_);
  SHEAP_ASSIGN_OR_RETURN(Txn * txn, FindActive(txn_id));
  SHEAP_ASSIGN_OR_RETURN(HeapAddr base, ResolveRef(txn_id, ref));
  SHEAP_ASSIGN_OR_RETURN(uint64_t v,
                         ReadSlotInternal(txn, base, slot,
                                          /*want_pointer=*/true));
  if (v == kNullAddr) return kNullRef;
  // A slot may still name a promotion husk; hand out the live address.
  SHEAP_ASSIGN_OR_RETURN(HeapAddr resolved, ResolveHusk(v));
  return handles_.Create(txn_id, resolved);
}

Status StableHeap::WriteScalar(TxnId txn_id, Ref ref, uint64_t slot,
                               uint64_t value) {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  MutatorGate::SharedSection shared(&gate_);
  SHEAP_ASSIGN_OR_RETURN(Txn * txn, FindActive(txn_id));
  SHEAP_ASSIGN_OR_RETURN(HeapAddr base, ResolveRef(txn_id, ref));
  return WriteSlotInternal(txn, base, slot, value, /*is_pointer=*/false);
}

Status StableHeap::WriteRef(TxnId txn_id, Ref ref, uint64_t slot,
                            Ref target) {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  MutatorGate::SharedSection shared(&gate_);
  SHEAP_ASSIGN_OR_RETURN(Txn * txn, FindActive(txn_id));
  SHEAP_ASSIGN_OR_RETURN(HeapAddr base, ResolveRef(txn_id, ref));
  HeapAddr value = kNullAddr;
  if (target != kNullRef) {
    SHEAP_ASSIGN_OR_RETURN(value, ResolveRef(txn_id, target));
  }
  return WriteSlotInternal(txn, base, slot, value, /*is_pointer=*/true);
}

Status StableHeap::ReleaseRef(TxnId txn_id, Ref ref) {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  MutatorGate::SharedSection shared(&gate_);
  auto owner = handles_.Owner(ref);
  if (!owner.ok()) return owner.status();
  if (*owner != txn_id) {
    return Status::InvalidArgument("handle owned by another transaction");
  }
  return handles_.Release(ref);
}

// ----------------------------------------------------------------- roots

Status StableHeap::SetRoot(TxnId txn_id, uint64_t index, Ref target) {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  MutatorGate::SharedSection shared(&gate_);
  SHEAP_ASSIGN_OR_RETURN(Txn * txn, FindActive(txn_id));
  HeapAddr value = kNullAddr;
  if (target != kNullRef) {
    SHEAP_ASSIGN_OR_RETURN(value, ResolveRef(txn_id, target));
  }
  return WriteSlotInternal(txn, stable_gc_->root_object(), index, value,
                           /*is_pointer=*/true);
}

StatusOr<Ref> StableHeap::GetRoot(TxnId txn_id, uint64_t index) {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  MutatorGate::SharedSection shared(&gate_);
  SHEAP_ASSIGN_OR_RETURN(Txn * txn, FindActive(txn_id));
  SHEAP_ASSIGN_OR_RETURN(uint64_t v,
                         ReadSlotInternal(txn, stable_gc_->root_object(),
                                          index, /*want_pointer=*/true));
  if (v == kNullAddr) return kNullRef;
  SHEAP_ASSIGN_OR_RETURN(HeapAddr resolved, ResolveHusk(v));
  return handles_.Create(txn_id, resolved);
}

// --------------------------------------------------------------- control

Status StableHeap::Checkpoint() {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  // Control-plane operations quiesce every mutator thread: checkpoints
  // snapshot transaction/dirty-page tables, collections move objects, and
  // crash simulation tears down shared state. In single-thread mode the
  // gate is disabled and these sections cost nothing.
  MutatorGate::ExclusiveSection exclusive(&gate_);
  return checkpointer_->Take();
}

Status StableHeap::CheckpointWithWriteback() {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  MutatorGate::ExclusiveSection exclusive(&gate_);
  return checkpointer_->TakeWithWriteback();
}

Status StableHeap::ForceLog() {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  MutatorGate::ExclusiveSection exclusive(&gate_);
  SHEAP_RETURN_IF_ERROR(log_->Force());
  DrainCommitQueue();
  return Status::OK();
}

Status StableHeap::StartStableCollection() {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  MutatorGate::ExclusiveSection exclusive(&gate_);
  return stable_gc_->Flip();
}

Status StableHeap::StepStableCollection(uint64_t pages) {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  MutatorGate::ExclusiveSection exclusive(&gate_);
  return stable_gc_->Step(pages).status();
}

Status StableHeap::CollectStableFully() {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  MutatorGate::ExclusiveSection exclusive(&gate_);
  return stable_gc_->CollectFully();
}

Status StableHeap::CollectVolatile() {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  MutatorGate::ExclusiveSection exclusive(&gate_);
  if (!options_.divided_heap) {
    return Status::InvalidArgument("heap is not divided");
  }
  SHEAP_RETURN_IF_ERROR(MaterializePending());
  return volatile_gc_->Collect();
}

Status StableHeap::WriteBackPages(double fraction, uint64_t seed) {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  MutatorGate::ExclusiveSection exclusive(&gate_);
  Rng rng(seed);
  return pool_->WriteBackRandomSubset(&rng, fraction);
}

Status StableHeap::StepInstantDrain() {
  if (!instant_ || !instant_->active()) return Status::OK();
  return instant_->DrainStep(options_.instant_drain_pages);
}

Status StableHeap::DrainInstantRecovery() {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  MutatorGate::ExclusiveSection exclusive(&gate_);
  if (!instant_) return Status::OK();
  return instant_->DrainAll();
}

void StableHeap::RefreshRecoveryStats() const {
  if (!instant_) return;
  const InstantRedoStats s = instant_->stats();
  if (!s.installed) return;
  recovery_stats_.ondemand_pages = s.ondemand_pages;
  recovery_stats_.drained_pages = s.drained_pages;
  recovery_stats_.pending_pages = s.pending_pages;
  recovery_stats_.redo_records_applied = s.records_applied;
  if (s.aborted) {
    recovery_stats_.outcome = RecoveryOutcome::kAborted;
  } else if (recovery_stats_.outcome == RecoveryOutcome::kOpenPendingRedo &&
             s.pending_pages == 0) {
    recovery_stats_.outcome = RecoveryOutcome::kInstantComplete;
  }
}

Status StableHeap::SimulateCrash(const CrashOptions& crash_options) {
  // Deliberately not CheckUsable(): after an *injected* crash this is how a
  // test finalizes the crash state (partial write-back + tail tear) before
  // destroying the heap. Only an already-finalized crash is refused.
  if (crashed_) return Status::Crashed("heap crashed; reopen to recover");
  MutatorGate::ExclusiveSection exclusive(&gate_);
  Rng rng(crash_options.seed);
  SHEAP_RETURN_IF_ERROR(pool_->WriteBackRandomSubset(
      &rng, crash_options.writeback_fraction));
  if (crash_options.tear_tail_bytes > 0) {
    env_->log()->TearTail(crash_options.tear_tail_bytes);
  }
  pool_->DropAll();  // main memory is lost
  crashed_ = true;
  return Status::OK();
}

// ------------------------------------------------------------ inspection

HeapStats StableHeap::stats() const {
  HeapStats s;
  s.fault = env_->faults()->stats();
  s.disk = env_->disk()->stats();
  s.log_device = env_->log()->stats();
  s.pool = pool_->stats();
  RefreshRecoveryStats();
  s.recovery = recovery_stats_;
  return s;
}

StatusOr<HeapAddr> StableHeap::DebugAddrOf(Ref ref) const {
  return handles_.Get(ref);
}

StatusOr<uint64_t> StableHeap::DebugReadWord(HeapAddr addr) {
  if (const auto* entry = pending_.Lookup(addr)) {
    return EncodeHeader(entry->cls, entry->nslots);
  }
  return mem_->ReadWord(PhysSlotAddr(addr));
}

Status StableHeap::MaterializePending() {
  if (pending_.empty()) return Status::OK();
  struct Move {
    HeapAddr stable_base;
    PendingMaterializations::Entry entry;
  };
  std::vector<Move> moves;
  SHEAP_RETURN_IF_ERROR(pending_.ForEach(
      [&](HeapAddr s, const PendingMaterializations::Entry& e) {
        moves.push_back({s, e});
        return Status::OK();
      }));
  for (const Move& m : moves) {
    const uint64_t total = 1 + m.entry.nslots;
    std::vector<uint8_t> bytes(total * kWordSizeBytes);
    // Header synthesized (the volatile source's word 0 is the forwarding
    // word); slots read from the live body, husk pointers resolved.
    const uint64_t header = EncodeHeader(m.entry.cls, m.entry.nslots);
    std::memcpy(bytes.data(), &header, kWordSizeBytes);
    for (uint64_t s = 0; s < m.entry.nslots; ++s) {
      SHEAP_ASSIGN_OR_RETURN(
          uint64_t v,
          mem_->ReadWord(SlotAddr(m.entry.volatile_base, s)));
      if (types_.IsPointerSlot(m.entry.cls, s) && v != kNullAddr) {
        SHEAP_ASSIGN_OR_RETURN(v, ResolveHusk(v));
      }
      std::memcpy(bytes.data() + (1 + s) * kWordSizeBytes, &v,
                  kWordSizeBytes);
    }
    // Written under the initial-value record's LSN: if this frame reaches
    // disk, redo skips the record; if not, redo rebuilds from it.
    SHEAP_RETURN_IF_ERROR(mem_->WriteBytesLogged(
        m.stable_base, bytes.data(), bytes.size(), m.entry.initial_lsn));
    pending_.Erase(m.stable_base);
  }
  // The materialized pages now hold normally logged data; later pending
  // batches must not share them (their neighbours' pageLSNs would suppress
  // the batches' initial-value redo).
  stable_gc_->ResetAllocIsolation();
  return Status::OK();
}

// ---------------------------------------------------- GC root callbacks

Status StableHeap::ScanVolatileAreaAsRoots(
    const std::function<StatusOr<HeapAddr>(HeapAddr)>& translate) {
  if (!options_.divided_heap) return Status::OK();
  // §5.4: volatile objects may reference stable objects; at a stable flip
  // the whole (small) volatile area is scanned as part of the root set.
  // Husk-valued slots are resolved and rewritten here, so by the end of the
  // scan no volatile slot names a husk whose target could stay uncopied.
  return volatile_gc_->ForEachObject(
      [&](HeapAddr base, const ObjectHeader& hdr) -> Status {
        for (uint64_t i = 0; i < hdr.nslots; ++i) {
          if (!types_.IsPointerSlot(hdr.class_id, i)) continue;
          const HeapAddr slot_addr = SlotAddr(base, i);
          SHEAP_ASSIGN_OR_RETURN(uint64_t v, mem_->ReadWord(slot_addr));
          if (v == kNullAddr) continue;
          SHEAP_ASSIGN_OR_RETURN(HeapAddr resolved, ResolveHusk(v));
          SHEAP_ASSIGN_OR_RETURN(HeapAddr translated, translate(resolved));
          if (translated != v) {
            SHEAP_RETURN_IF_ERROR(
                mem_->WriteWordUnlogged(slot_addr, translated));
          }
        }
        env_->clock()->ChargeScanWords(hdr.TotalWords());
        return Status::OK();
      });
}

Status StableHeap::VolatileExtraRoots(const RootTranslator& translate) {
  // 1. Remembered slots: stable slots holding volatile pointers. The
  //    rewrite of a logged (stable) page is itself logged as a scan-style
  //    record ("S4vscan"): redo re-applies it; if the owning transaction
  //    later aborts, its undo restores the old value beneath.
  for (const auto& s : remembered_.AllSlots()) {
    const HeapAddr slot_addr = SlotAddr(s.obj_base, s.slot);
    SHEAP_ASSIGN_OR_RETURN(uint64_t v, mem_->ReadWord(slot_addr));
    if (v == kNullAddr || !volatile_gc_->Contains(v)) continue;
    SHEAP_ASSIGN_OR_RETURN(HeapAddr nv, translate(v));
    if (nv == v) continue;
    LogRecord rec;
    rec.type = RecordType::kGcScan;
    rec.aux = LogRecord::kScanPartial;
    rec.page = PageOf(slot_addr);
    rec.slot_updates.emplace_back(WordInPage(slot_addr), nv);
    const Lsn lsn = log_->Append(&rec);
    SHEAP_RETURN_IF_ERROR(mem_->WriteWordLogged(slot_addr, nv, lsn));
    // Keep the in-memory undo info of the owning transaction consistent:
    // its new_word for this slot moved with the object.
    Txn* owner = txns_->Find(s.owner);
    if (owner != nullptr) {
      for (auto it = owner->updates.rbegin(); it != owner->updates.rend();
           ++it) {
        if (it->obj_base == s.obj_base && it->slot == s.slot) {
          if (it->new_word == v) it->new_word = nv;
          break;
        }
      }
    }
  }

  // 2. Undo information of active transactions: updated volatile objects
  //    and old/new pointer values are roots — abort must be able to write
  //    into them and restore valid references.
  for (Txn* txn : txns_->ActiveTxns()) {
    for (TxnUpdate& e : txn->updates) {
      if (volatile_gc_->Contains(e.obj_base)) {
        SHEAP_ASSIGN_OR_RETURN(e.obj_base, translate(e.obj_base));
      }
      if (e.is_pointer) {
        if (e.old_word != kNullAddr && volatile_gc_->Contains(e.old_word)) {
          SHEAP_ASSIGN_OR_RETURN(e.old_word, translate(e.old_word));
        }
        if (e.new_word != kNullAddr && volatile_gc_->Contains(e.new_word)) {
          SHEAP_ASSIGN_OR_RETURN(e.new_word, translate(e.new_word));
        }
      }
    }
    for (TxnAlloc& a : txn->allocs) {
      if (!a.stable_area && volatile_gc_->Contains(a.base)) {
        SHEAP_ASSIGN_OR_RETURN(a.base, translate(a.base));
      }
    }
  }

  // 3. Likely-stable objects are kept alive through the collection (their
  //    dependee transactions may still commit); entries are rekeyed via
  //    on_object_moved. Objects whose entries were not reachable otherwise
  //    still get copied here.
  for (HeapAddr obj : ls_.AllObjects()) {
    if (volatile_gc_->Contains(obj)) {
      SHEAP_ASSIGN_OR_RETURN(HeapAddr moved, translate(obj));
      (void)moved;  // rekey happens in on_object_moved
    }
  }
  return Status::OK();
}

}  // namespace sheap
