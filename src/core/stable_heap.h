// StableHeap: the public face of the library — a stable heap as specified in
// paper Chapter 2: storage managed automatically by garbage collection,
// manipulated by atomic transactions, accessed through one uniform model.
//
// The heap lives on an Env (disk + stable log + clock; simulated or real). A
// "machine crash" is simulated by SimulateCrash() + destroying the heap;
// re-Open()ing on the same Env runs recovery. Objects are reached through
// Refs (handle-table indices); application code never holds raw addresses,
// which is what lets the collector move objects under it.
//
// Concurrency model (paper §2.1): transactions are sequences of low-level
// indivisible actions; every public method is one action. Two regimes
// (StableHeapOptions::mutator_threads, DESIGN.md §5i):
//   * 1 (default): the historical single-mutator mode. Interleave calls
//     from different transactions freely (see workload::Scheduler) but from
//     ONE thread — callers serialize actions, exactly as Argus serialized
//     them at action boundaries. Execution is byte-deterministic.
//   * > 1: true concurrent mutators. Begin/Read*/Write*/Commit/Abort and
//     the root operations may be called from that many OS threads at once;
//     each action runs inside a shared section of the GC<->mutator
//     handshake gate, commits enqueue lock-free, and structural operations
//     (allocation, collection, checkpoints, crash simulation) take the
//     gate exclusively after an epoch/acknowledgment handshake. Outcomes
//     are serializable (strict 2PL is unchanged) but schedule-dependent;
//     correctness is checked by post-run invariants, not byte equality.

#ifndef SHEAP_CORE_STABLE_HEAP_H_
#define SHEAP_CORE_STABLE_HEAP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "core/mutator_gate.h"
#include "gc/atomic_gc.h"
#include "gc/copying_gc.h"
#include "heap/handle_table.h"
#include "heap/heap_memory.h"
#include "heap/space_manager.h"
#include "heap/type_registry.h"
#include "recovery/checkpoint.h"
#include "recovery/recovery.h"
#include "recovery/utt.h"
#include "stability/promotion.h"
#include "stability/stable_sets.h"
#include "stability/tracker.h"
#include "storage/buffer_pool.h"
#include "storage/env.h"
#include "txn/lock_manager.h"
#include "txn/txn_manager.h"
#include "wal/group_commit.h"
#include "wal/log_writer.h"

namespace sheap {

/// Configuration for Open(). Geometry fields are persisted in the heap
/// format record; when reopening an existing heap the persisted values win.
struct StableHeapOptions {
  /// Pages per stable-area semispace (4 KiB pages).
  uint64_t stable_space_pages = 2048;
  /// Pages per volatile-area semispace.
  uint64_t volatile_space_pages = 512;
  /// Slots in the stable root array.
  uint64_t root_slots = 64;
  /// Divided heap (Chapter 5). When false, every object is allocated in the
  /// stable area and pays full logging (the Chapter 3/4 model).
  bool divided_heap = true;

  /// Buffer-pool capacity in frames.
  uint64_t buffer_pool_frames = 16384;
  /// Force the log at every commit (true) or rely on explicit ForceLog()
  /// batches (group commit, §2.2.1 footnote 1).
  bool force_on_commit = true;
  /// Real group commit (§2.2.1 footnote 1): committing transactions join a
  /// commit queue; one batch-leader Force() covers every waiter. While a
  /// transaction waits, Commit returns Status::Busy — retry the same call
  /// until it returns OK (the scheduler's standard retry discipline).
  /// Takes precedence over force_on_commit. Commit still returns OK only
  /// after the commit record is on the stable device.
  bool group_commit = false;
  /// Batch-close policy and poll cost for group commit.
  GroupCommitOptions group_commit_options;
  /// Collector pages scanned per allocation when a collection is active
  /// (Baker-style pacing of the incremental collector).
  uint64_t gc_step_pages = 1;
  /// Start a collection automatically when allocation runs out of space.
  bool auto_collect = true;
  /// Incremental collection (Ellis). When false, automatic collections are
  /// run stop-the-world (the earlier Kolodner-Liskov-Weihl baseline).
  bool incremental_gc = true;
  /// Read-barrier implementation: Ellis page protection or Baker per-access
  /// checks (§3.8).
  GcBarrierMode barrier_mode = GcBarrierMode::kPageProtection;
  /// Collector crash-safety mechanism: write-ahead logging (this paper) or
  /// Detlefs-style synchronous writes (pause comparator, E7).
  GcDurability gc_durability = GcDurability::kWriteAheadLog;
  /// How newly stable objects move to the stable area: physically at commit
  /// (§5.2) or deferred to the next volatile collection with initial-value
  /// records (§5.5).
  PromotionMethod promotion_method = PromotionMethod::kAtCommit;
  /// Redo worker partitions for recovery. 0 = hardware concurrency
  /// (clamped to RedoExecutor::kMaxPartitions); 1 = the historical serial
  /// path. Recovery output is byte-identical for every value.
  uint32_t recovery_threads = 1;
  /// Instant recovery (ROADMAP item 2; cf. Sauer & Härder's REDO-only
  /// recovery and HEAL's online incremental repair, PAPERS.md): Open
  /// returns right after analysis + undo with the redo plan installed as a
  /// per-page gate — pages are redone on first touch, and a cooperative
  /// background drain finishes the rest at action boundaries. Time to first
  /// transaction stops scaling with the redo-plan size (experiment E15);
  /// the final heap bytes are identical to offline recovery's for every
  /// access order and drain thread count. Off by default: the historical
  /// offline redo pass inside Open.
  bool instant_recovery = false;
  /// Worker partitions for the instant-recovery drain (1 = serial;
  /// clamped to RedoExecutor::kMaxPartitions). Bytes identical for every
  /// value.
  uint32_t instant_drain_threads = 1;
  /// Pending pages the cooperative drain redoes per Begin/Commit boundary.
  uint64_t instant_drain_pages = 8;
  /// Scan workers for the stable collector's background scan (WAL mode).
  /// 0 = hardware concurrency (clamped to 64). Log bytes, space layout,
  /// and recovery state are byte-identical for every value; threads only
  /// change how fast the scan phase runs (DESIGN.md §5f).
  uint32_t gc_threads = 1;
  /// Adaptive pacing: size the incremental collector's per-allocation step
  /// budget from the live estimate and free headroom (k pages scanned per
  /// page allocated) instead of the fixed gc_step_pages, so collections
  /// finish before space exhaustion forces a full drain.
  bool gc_adaptive_pacing = false;
  /// Coalesce the stable collector's log records (kGcCopyBatch runs and
  /// clean-run kGcScan). Off reverts to per-object kGcCopy encoding; kept
  /// selectable so E14 can A/B the log volume under the same scan order.
  bool gc_batch_records = true;
  /// Writer threads for parallel checkpoint writeback (FlushAll /
  /// CheckpointWithWriteback). 0 = hardware concurrency.
  uint32_t flush_writer_threads = 4;
  /// Mutator threads the heap must tolerate calling it concurrently
  /// (DESIGN.md §5i). 1 (default): the historical single-mutator mode —
  /// byte-deterministic, required by the crash matrix and the determinism
  /// proofs. > 1: the transaction path becomes thread-safe (see the file
  /// comment); the value itself is only a declaration of intent — any
  /// number of threads up to MutatorGate::kMaxThreads may enter. Not
  /// persisted in the format record: each Open chooses its own mode.
  uint32_t mutator_threads = 1;
};

/// Aggregated low-level counters for inspection tools (examples/, tests):
/// the fault machinery plus the devices it exercises.
struct HeapStats {
  FaultStats fault;
  DiskStats disk;
  LogDeviceStats log_device;
  BufferPoolStats pool;
  /// Stats from the last recovery this heap performed (zero on format).
  RecoveryStats recovery;
};

/// See file comment.
class StableHeap {
 public:
  /// Open (recover) or create (format) the heap on `env`.
  ///
  /// The allocation/commit entry points below carry an explicit
  /// [[nodiscard]] on top of Status/StatusOr's class-level one: discarding
  /// any of them silently drops durability (a Commit whose error goes
  /// unchecked is an acknowledged-then-lost write). -Werror=unused-result
  /// makes violations hard build errors.
  [[nodiscard]] static StatusOr<std::unique_ptr<StableHeap>> Open(
      Env* env, const StableHeapOptions& options);

  ~StableHeap();
  StableHeap(const StableHeap&) = delete;
  StableHeap& operator=(const StableHeap&) = delete;

  // ------------------------------------------------------------- schema
  /// Register a record class; `pointer_map[i]` says slot i holds a pointer.
  /// Logged, so the collector can parse objects after recovery.
  StatusOr<ClassId> RegisterClass(const std::vector<bool>& pointer_map);

  // ------------------------------------------------------------ transactions
  [[nodiscard]] StatusOr<TxnId> Begin();
  [[nodiscard]] Status Commit(TxnId txn);
  [[nodiscard]] Status Abort(TxnId txn);

  /// Convenience for single-threaded callers under group commit: drive
  /// Commit through the Busy retry protocol until the batch closes (each
  /// retry charges poll time, so a lone committer reaches the batch
  /// deadline). Identical to Commit when group commit is off.
  [[nodiscard]] Status CommitSync(TxnId txn) {
    for (;;) {
      Status st = Commit(txn);
      if (!st.IsBusy()) return st;
    }
  }

  // Two-phase commit participant role (§2.2 extension; see dtx/two_phase.h).
  /// Phase-1 vote: promote, force a kPrepare record tagged with the global
  /// transaction id, release local handles. The transaction becomes
  /// *in doubt*: it holds its locks (across crashes) until the coordinator
  /// delivers the outcome.
  [[nodiscard]] Status Prepare(TxnId txn, uint64_t gtid);
  /// Coordinator said commit.
  [[nodiscard]] Status CommitPrepared(TxnId txn);
  /// Coordinator said abort (or presumed abort).
  [[nodiscard]] Status AbortPrepared(TxnId txn);
  /// In-doubt transactions (survivors of recovery): (local txn, gtid).
  std::vector<std::pair<TxnId, uint64_t>> InDoubtTransactions() const;

  // --------------------------------------------------------------- objects
  /// Allocate an object. In the divided heap new objects are volatile (they
  /// become stable by reachability at commit, §2.1); in all-stable mode they
  /// are allocated directly in the stable area.
  [[nodiscard]] StatusOr<Ref> Allocate(TxnId txn, ClassId cls,
                                       uint64_t nslots);

  /// Allocate directly in the stable area (all-stable mode's default path;
  /// also usable in divided mode for objects known to be long-lived).
  [[nodiscard]] StatusOr<Ref> AllocateStable(TxnId txn, ClassId cls,
                                             uint64_t nslots);

  StatusOr<uint64_t> ReadScalar(TxnId txn, Ref ref, uint64_t slot);
  StatusOr<Ref> ReadRef(TxnId txn, Ref ref, uint64_t slot);
  Status WriteScalar(TxnId txn, Ref ref, uint64_t slot, uint64_t value);
  Status WriteRef(TxnId txn, Ref ref, uint64_t slot, Ref target);

  /// Release a handle before transaction end (optional; all of a
  /// transaction's handles are released at commit/abort).
  Status ReleaseRef(TxnId txn, Ref ref);

  // ----------------------------------------------------------------- roots
  /// The stable roots are slots of a distinguished root array (§2.1).
  Status SetRoot(TxnId txn, uint64_t index, Ref target);
  StatusOr<Ref> GetRoot(TxnId txn, uint64_t index);

  // --------------------------------------------------------------- control
  Status Checkpoint();
  /// Flush checkpoint: parallel write-back of all dirty pages (coalesced
  /// into page-adjacent runs), then a normal checkpoint whose DPT is
  /// near-empty — post-crash redo starts at the checkpoint itself.
  Status CheckpointWithWriteback();
  /// Force the log (group-commit batch boundary).
  Status ForceLog();
  /// Begin a stable-area collection (flip).
  Status StartStableCollection();
  /// Advance the stable collection by up to `pages` page scans.
  Status StepStableCollection(uint64_t pages);
  /// Run a full stable collection as one pause.
  Status CollectStableFully();
  /// Collect the volatile area (stop-the-world, cheap, unlogged).
  Status CollectVolatile();
  /// Let the background writer push dirty pages to disk (steady-state
  /// cleaning; diversifies crash states in tests).
  Status WriteBackPages(double fraction, uint64_t seed);
  /// Instant recovery: drain the redo backlog to completion. No-op when
  /// instant recovery is off or the plan already drained; otherwise
  /// equivalent to touching every remaining page (same final bytes).
  [[nodiscard]] Status DrainInstantRecovery();

  // ----------------------------------------------------------------- crash
  /// Simulate a machine crash: some dirty pages reach disk (respecting the
  /// WAL constraint), the un-acknowledged log tail may tear, and the heap
  /// becomes unusable. Destroy it and Open() the Env again to recover.
  Status SimulateCrash(const CrashOptions& crash_options);

  // ------------------------------------------------------------ inspection
  /// Stats of the last recovery. Under instant recovery the on-demand /
  /// drained / pending counters and the terminal outcome are refreshed
  /// from the gate on every call, so callers watch the drain progress.
  const RecoveryStats& recovery_stats() const {
    RefreshRecoveryStats();
    return recovery_stats_;
  }
  GcStats& stable_gc_stats() { return stable_gc_->stats(); }
  GcStats& volatile_gc_stats() { return volatile_gc_->stats(); }
  const TrackerStats& tracker_stats() const { return tracker_->stats(); }
  const PromotionStats& promotion_stats() const {
    return promoter_->stats();
  }
  const CheckpointStats& checkpoint_stats() const {
    return checkpointer_->stats();
  }
  const LockStats& lock_stats() const { return locks_.stats(); }
  const GroupCommitStats& group_commit_stats() const {
    return commit_queue_->stats();
  }
  /// Handshake counters, consistent under the gate's handshake lock.
  MutatorGateStats gate_stats() const { return gate_.stats(); }
  /// Fault-injection + device + pool counters (see HeapStats).
  HeapStats stats() const;
  const LogVolumeStats& log_volume() const { return log_->volume_stats(); }
  Env* env() { return env_; }
  const StableHeapOptions& options() const { return options_; }

  // Introspection for tests and benchmarks (not part of the stable API).
  AtomicGc* stable_gc() { return stable_gc_.get(); }
  CopyingGc* volatile_gc() { return volatile_gc_.get(); }
  BufferPool* pool() { return pool_.get(); }
  LogWriter* log_writer() { return log_.get(); }
  CommitQueue* commit_queue() { return commit_queue_.get(); }
  SpaceManager* spaces() { return spaces_.get(); }
  UndoTranslationTable* utt() { return &utt_; }
  RememberedSet* remembered() { return &remembered_; }
  PendingMaterializations* pending_materializations() { return &pending_; }
  LikelyStableSet* likely_stable() { return &ls_; }
  TxnManager* txn_manager() { return txns_.get(); }
  HandleTable* handles() { return &handles_; }
  HeapMemory* memory() { return mem_.get(); }
  /// Instant-recovery gate, null when instant_recovery is off or the heap
  /// was freshly formatted.
  InstantRedoManager* instant_redo() { return instant_.get(); }
  StatusOr<HeapAddr> DebugAddrOf(Ref ref) const;
  StatusOr<uint64_t> DebugReadWord(HeapAddr addr);

 private:
  explicit StableHeap(Env* env, const StableHeapOptions& options);

  Status Initialize();
  /// Initialize's body; the wrapper stamps time-to-open and, on an
  /// injected-fault early return anywhere in the open path (recovery
  /// proper, GC resume, the post-open checkpoint), deactivates the instant
  /// gate so an aborted open always reads as a terminal outcome.
  Status InitializeImpl();
  Status FormatHeap();
  Status RecoverHeap();
  void InstallPoolHooks();
  void WireGcHooks();
  /// Cooperative instant-recovery drain: redo up to instant_drain_pages
  /// pending pages. Called at action boundaries (Begin/Commit), the
  /// MaybeStepCollector idiom.
  Status StepInstantDrain();
  /// Fold the instant gate's counters and terminal outcome into
  /// recovery_stats_ (no-op for offline recovery).
  void RefreshRecoveryStats() const;

  Status CheckUsable() const;
  /// True in the concurrent-mutator regime (mutator_threads > 1).
  bool concurrent() const { return options_.mutator_threads > 1; }
  /// The full commit protocol (promotion, commit record, force / group
  /// commit, FinishTxn). Single-mutator callers run it directly; the
  /// concurrent path runs it under the exclusive gate when the transaction
  /// needs promotion, and inlines the promotion-free tail under a shared
  /// section otherwise.
  Status CommitImpl(TxnId txn_id);
  /// Read-barrier wrappers: under concurrent mutators an Ellis trap scans
  /// a page (copies objects, writes log records), so barrier evaluation
  /// during an active collection serializes on gc_mu_.
  Status GcEnsureAccess(HeapAddr a);
  Status GcEnsureSlotAccess(HeapAddr slot_addr, bool is_pointer);
  StatusOr<Txn*> FindActive(TxnId txn);
  StatusOr<HeapAddr> ResolveRef(TxnId txn, Ref ref) const;
  /// Resolve a promotion husk's forwarding word, if any.
  StatusOr<HeapAddr> ResolveHusk(HeapAddr a);
  bool InStableArea(HeapAddr a) const;

  StatusOr<uint64_t> ReadSlotInternal(Txn* txn, HeapAddr base, uint64_t slot,
                                      bool want_pointer);
  Status WriteSlotInternal(Txn* txn, HeapAddr base, uint64_t slot,
                           uint64_t value, bool is_pointer);
  StatusOr<ObjectHeader> CheckedHeader(HeapAddr base, uint64_t slot);
  Status UndoTxn(Txn* txn);
  /// Shared tail of Commit/CommitPrepared/Abort/AbortPrepared: release
  /// locks and per-transaction side state, log kEnd, drop the table entry.
  Status FinishTxn(TxnId txn_id);
  /// Group commit: complete one durable waiter (kCommitting → kCommitted,
  /// then the FinishTxn tail). Runs from the commit queue's callbacks.
  void CompleteGroupCommit(TxnId txn_id);
  /// Drive the commit queue for a waiting transaction. Returns OK once the
  /// waiter's commit record is durable, Busy while the batch stays open.
  Status GroupCommitWait(TxnId txn_id, bool retry);
  /// Piggyback: after any unrelated Force(), complete waiters it covered.
  void DrainCommitQueue();
  /// Step the incremental stable collector before an allocation of
  /// `upcoming_alloc_bytes` (header + slots). The budget is the fixed
  /// gc_step_pages, or — under gc_adaptive_pacing — the Baker-coupled
  /// AtomicGc::PacingBudgetPages grant for that allocation size.
  Status MaybeStepCollector(uint64_t upcoming_alloc_bytes);
  /// Method-2 promotion: write every pending object's body (read from its
  /// volatile source, husk pointers resolved) to its reserved stable
  /// address. Runs before volatile collections and stable flips.
  Status MaterializePending();
  /// Physical location of a slot (pending objects live at their volatile
  /// source until materialized).
  HeapAddr PhysSlotAddr(HeapAddr slot_addr) const;
  StatusOr<HeapAddr> AllocateStableRaw(Txn* txn, ClassId cls,
                                       uint64_t nslots);
  StatusOr<HeapAddr> AllocateVolatileRaw(Txn* txn, ClassId cls,
                                         uint64_t nslots);
  Status ValidateClass(ClassId cls, uint64_t nslots) const;
  /// Stable-flip hook: treat the volatile area as roots (§5.4).
  Status ScanVolatileAreaAsRoots(
      const std::function<StatusOr<HeapAddr>(HeapAddr)>& translate);
  /// Volatile-collection hook: remembered slots, undo info, LS.
  Status VolatileExtraRoots(const RootTranslator& translate);

  Env* env_;
  StableHeapOptions options_;
  bool crashed_ SHEAP_GATE_EXCLUSIVE = false;

  /// GC <-> mutator handshake (DESIGN.md §5i). Disabled — every operation
  /// a no-op — in single-mutator mode. Ranks above every other lock.
  MutatorGate gate_;
  /// Serializes read-barrier traps (an Ellis trap scans a page: object
  /// copies plus log records) among shared-section mutators while a stable
  /// collection is active. Rank: below gate_, above qmu_/side_mu_.
  Mutex gc_mu_;
  /// Guards the cross-transaction side tables (remembered_, ls_, utt_ and
  /// the tracker's maps) against concurrent shared-section mutators. Rank:
  /// below qmu_, above the structure shards and the log writer's mutex.
  Mutex side_mu_;
  /// The buffer pool's concurrent regime is held open for the heap's
  /// lifetime in multi-mutator mode; closed by the destructor.
  bool pool_concurrent_ = false;

  std::unique_ptr<LogWriter> log_;
  std::unique_ptr<CommitQueue> commit_queue_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<HeapMemory> mem_;
  std::unique_ptr<SpaceManager> spaces_;
  TypeRegistry types_;
  UndoTranslationTable utt_;
  LockManager locks_;
  HandleTable handles_;
  std::unique_ptr<TxnManager> txns_;
  std::unique_ptr<AtomicGc> stable_gc_;
  std::unique_ptr<CopyingGc> volatile_gc_;
  RememberedSet remembered_;
  LikelyStableSet ls_;
  PendingMaterializations pending_;
  std::unique_ptr<StabilityTracker> tracker_;
  std::unique_ptr<Promoter> promoter_ SHEAP_GATE_EXCLUSIVE;
  std::unique_ptr<Checkpointer> checkpointer_ SHEAP_GATE_EXCLUSIVE;
  std::unique_ptr<InstantRedoManager> instant_ SHEAP_GATE_EXCLUSIVE;
  /// Mutable: the const inspection paths refresh the instant counters.
  mutable RecoveryStats recovery_stats_;
};

}  // namespace sheap

#endif  // SHEAP_CORE_STABLE_HEAP_H_
