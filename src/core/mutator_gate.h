// MutatorGate: the GC <-> mutator handshake for true concurrent mutators
// (DESIGN.md §5i).
//
// N mutator threads drive Begin/Read/Write/Commit concurrently; the
// collector's structural transitions (flip, scan rounds, checkpoints,
// volatile collections, crash simulation) need all of them out of the heap.
// Instead of a stop-the-world signal storm, the gate runs the epoch /
// acknowledgment protocol bdwgc uses in pthread_stop_world.c, minus the
// signals: each mutator thread owns a padded per-thread slot that says
// whether it is inside a heap action. An exclusive acquirer publishes an
// "exclusive pending" flag (one epoch), then waits for every slot to read
// *out of action* — each observed transition is that thread's
// acknowledgment. Mutator threads entering a shared section while the flag
// is up back out and sleep until the epoch ends, so the acquirer is never
// starved and never interrupts a low-level action midway (the paper's §2.1
// actions stay indivisible — the gate just makes "action boundary" a real
// multi-thread notion).
//
// Modes:
//   * disabled (StableHeapOptions::mutator_threads == 1, the default):
//     every method returns immediately without touching an atomic. The
//     single-threaded byte-determinism contract (crash matrix, SimClock
//     lanes, golden log bytes) is untouched.
//   * enabled: shared sections are lock-free (one relaxed-ish store + one
//     seq_cst load on the fast path); exclusive acquisition serializes on
//     excl_mu_ and performs the handshake.
//
// Reentrancy: a thread holding the gate exclusively may re-enter both
// exclusively and shared (heap-internal code paths nest public actions);
// a thread inside a shared section must NOT request exclusive access
// (upgrade would deadlock against a concurrent acquirer) — enforced by
// SHEAP_CHECK. Nesting is tracked per thread, per gate, in TLS.
//
// Lock rank (DESIGN.md §5e): the gate sits ABOVE every other lock in the
// tree — it is acquired first and released last by any heap entry point,
// and no code holding a lower-rank mutex ever blocks on the gate.

#ifndef SHEAP_CORE_MUTATOR_GATE_H_
#define SHEAP_CORE_MUTATOR_GATE_H_

#include <atomic>
#include <cstdint>

#include "common/thread_annotations.h"

namespace sheap {

/// Handshake counters, readable single-threaded (tests/bench after join).
struct MutatorGateStats {
  /// Exclusive acquisitions that ran the handshake (epochs).
  uint64_t handshakes = 0;
  /// Per-thread acknowledgments waited for across all handshakes: slots
  /// observed in-action at least once before reading out-of-action.
  uint64_t acks_waited = 0;
  /// Shared entries that found the exclusive flag up, backed out, and
  /// slept until the epoch ended.
  uint64_t shared_backoffs = 0;
};

/// See file comment.
class MutatorGate {
 public:
  /// Per-thread slots; a CHECK fires if more distinct threads ever enter.
  static constexpr uint32_t kMaxThreads = 64;

  /// `enabled` is fixed at construction (mutator_threads > 1).
  explicit MutatorGate(bool enabled);
  MutatorGate(const MutatorGate&) = delete;
  MutatorGate& operator=(const MutatorGate&) = delete;

  bool enabled() const { return enabled_; }

  /// Enter/exit a shared (mutator) section. Bounded: never blocks while
  /// inside; may sleep before entering when an exclusive epoch is open.
  void EnterShared();
  void ExitShared();

  /// Acquire/release the gate exclusively (collector / control side).
  /// Blocks until every mutator thread acknowledges being out of action.
  /// Analysis bypassed: excl_mu_ is deliberately held across the pair
  /// (a scoped capability cannot span two calls), and reentrant early
  /// returns make the acquisition conditional.
  void AcquireExclusive() SHEAP_NO_THREAD_SAFETY_ANALYSIS;
  void ReleaseExclusive() SHEAP_NO_THREAD_SAFETY_ANALYSIS;

  /// True when the calling thread currently holds the gate exclusively
  /// (or the gate is disabled — single-thread mode is trivially exclusive).
  bool ExclusiveHeldByCaller() const;

  /// Counter snapshot, consistent under the handshake lock.
  MutatorGateStats stats() const {
    MutexLock lock(&wait_mu_);
    return stats_;
  }

  /// RAII shared section.
  class SharedSection {
   public:
    explicit SharedSection(MutatorGate* gate) : gate_(gate) {
      gate_->EnterShared();
    }
    ~SharedSection() { gate_->ExitShared(); }
    SharedSection(const SharedSection&) = delete;
    SharedSection& operator=(const SharedSection&) = delete;

   private:
    MutatorGate* const gate_;
  };

  /// RAII exclusive section.
  class ExclusiveSection {
   public:
    explicit ExclusiveSection(MutatorGate* gate) : gate_(gate) {
      gate_->AcquireExclusive();
    }
    ~ExclusiveSection() { gate_->ReleaseExclusive(); }
    ExclusiveSection(const ExclusiveSection&) = delete;
    ExclusiveSection& operator=(const ExclusiveSection&) = delete;

   private:
    MutatorGate* const gate_;
  };

 private:
  /// Cache-line-padded per-thread in-action flag (1 = inside a shared
  /// section). Padding keeps the handshake's slot scans from false-sharing
  /// with mutator stores.
  struct alignas(64) Slot {
    std::atomic<uint32_t> in_action{0};
  };

  /// TLS nesting record for this thread & gate; creates on first use and
  /// assigns the thread's slot index.
  struct ThreadState;
  ThreadState* MyState();

  const bool enabled_;
  /// Process-unique identity, so TLS records survive address reuse when a
  /// gate is destroyed and another is constructed at the same address.
  const uint64_t gate_id_;

  // unguarded: each Slot is a seq_cst atomic written only through the
  // owning thread's TLS slot index; the array itself is never resized.
  Slot slots_[kMaxThreads];
  std::atomic<uint32_t> next_slot_{0};

  /// Raised for the duration of one exclusive epoch. seq_cst against the
  /// slot stores (Dekker pattern: mutator stores in_action then loads this;
  /// acquirer stores this then loads every in_action).
  std::atomic<uint32_t> exclusive_pending_{0};

  /// Serializes exclusive acquirers; held for the whole exclusive section.
  Mutex excl_mu_;
  /// Sleep/wake channel for both directions of the handshake: backed-out
  /// mutators wait for the epoch to end; the acquirer waits for slot acks.
  /// Mutable so the const stats() snapshot can lock it.
  mutable Mutex wait_mu_;
  CondVar wait_cv_;

  /// Exclusive owner bookkeeping (written by the owner while it holds
  /// excl_mu_; read by ExclusiveHeldByCaller from the same thread).
  std::atomic<uint64_t> owner_token_{0};

  MutatorGateStats stats_ SHEAP_GUARDED_BY(wait_mu_);
};

}  // namespace sheap

#endif  // SHEAP_CORE_MUTATOR_GATE_H_
