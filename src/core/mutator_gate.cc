#include "core/mutator_gate.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace sheap {

namespace {
/// Unique gate identities, so TLS survives a gate being destroyed and a new
/// one allocated at the same address (tests open many heaps sequentially).
std::atomic<uint64_t> g_gate_ids{1};
}  // namespace

/// Per-(thread, gate) nesting record. Lives in TLS; `gate_id` detects a
/// recycled gate address and resets the record.
struct MutatorGate::ThreadState {
  uint64_t gate_id = 0;
  uint32_t slot = 0;
  uint32_t shared_depth = 0;
  uint32_t excl_depth = 0;
};

MutatorGate::ThreadState* MutatorGate::MyState() {
  thread_local std::unordered_map<const MutatorGate*, ThreadState> tls;
  ThreadState& ts = tls[this];
  if (ts.gate_id != gate_id_) {
    const uint32_t s = next_slot_.fetch_add(1, std::memory_order_acq_rel);
    SHEAP_CHECK(s < kMaxThreads);
    ts = ThreadState{};
    ts.gate_id = gate_id_;
    ts.slot = s;
  }
  return &ts;
}

MutatorGate::MutatorGate(bool enabled)
    : enabled_(enabled),
      gate_id_(g_gate_ids.fetch_add(1, std::memory_order_relaxed)) {}

// The handshake is a Dekker pattern: a mutator stores its in-action flag
// then loads exclusive_pending_; the acquirer stores exclusive_pending_
// then loads every in-action flag. All four accesses are seq_cst so the
// two sides cannot both miss each other.

void MutatorGate::EnterShared() {
  if (!enabled_) return;
  ThreadState* ts = MyState();
  if (ts->excl_depth > 0 || ts->shared_depth > 0) {
    // Nested under our own exclusive epoch or an outer shared section.
    ++ts->shared_depth;
    return;
  }
  Slot& slot = slots_[ts->slot];
  for (;;) {
    slot.in_action.store(1, std::memory_order_seq_cst);
    if (exclusive_pending_.load(std::memory_order_seq_cst) == 0) break;
    // An epoch is open: acknowledge (back out) and sleep until it ends.
    slot.in_action.store(0, std::memory_order_seq_cst);
    MutexLock l(&wait_mu_);
    ++stats_.shared_backoffs;
    wait_cv_.NotifyAll();  // the acquirer may be waiting on our slot
    while (exclusive_pending_.load(std::memory_order_seq_cst) != 0) {
      wait_cv_.Wait(&wait_mu_);
    }
  }
  ts->shared_depth = 1;
}

void MutatorGate::ExitShared() {
  if (!enabled_) return;
  ThreadState* ts = MyState();
  SHEAP_DCHECK(ts->shared_depth > 0);
  if (--ts->shared_depth > 0) return;
  if (ts->excl_depth > 0) return;  // ran inside our own exclusive epoch
  slots_[ts->slot].in_action.store(0, std::memory_order_seq_cst);
  if (exclusive_pending_.load(std::memory_order_seq_cst) != 0) {
    // This exit is an acknowledgment the acquirer is waiting for.
    MutexLock l(&wait_mu_);
    wait_cv_.NotifyAll();
  }
}

void MutatorGate::AcquireExclusive() {
  if (!enabled_) return;
  ThreadState* ts = MyState();
  if (ts->excl_depth > 0) {
    ++ts->excl_depth;
    return;
  }
  // Upgrading shared -> exclusive would deadlock against a concurrent
  // acquirer waiting for our slot; the heap's entry points are structured
  // so it never happens (Commit re-runs under exclusive instead).
  SHEAP_CHECK(ts->shared_depth == 0);
  excl_mu_.lock();
  exclusive_pending_.store(1, std::memory_order_seq_cst);
  const uint32_t nslots =
      std::min(next_slot_.load(std::memory_order_acquire), kMaxThreads);
  {
    MutexLock l(&wait_mu_);
    ++stats_.handshakes;
    for (uint32_t i = 0; i < nslots; ++i) {
      if (i == ts->slot) continue;  // our own slot is out of action
      bool waited = false;
      while (slots_[i].in_action.load(std::memory_order_seq_cst) != 0) {
        waited = true;
        wait_cv_.Wait(&wait_mu_);
      }
      if (waited) ++stats_.acks_waited;
    }
  }
  ts->excl_depth = 1;
  owner_token_.store(reinterpret_cast<uintptr_t>(ts),
                     std::memory_order_relaxed);
}

void MutatorGate::ReleaseExclusive() {
  if (!enabled_) return;
  ThreadState* ts = MyState();
  SHEAP_DCHECK(ts->excl_depth > 0);
  if (--ts->excl_depth > 0) return;
  owner_token_.store(0, std::memory_order_relaxed);
  exclusive_pending_.store(0, std::memory_order_seq_cst);
  {
    MutexLock l(&wait_mu_);
    wait_cv_.NotifyAll();  // wake backed-out mutators
  }
  excl_mu_.unlock();
}

bool MutatorGate::ExclusiveHeldByCaller() const {
  if (!enabled_) return true;  // single-thread mode is trivially exclusive
  ThreadState* ts = const_cast<MutatorGate*>(this)->MyState();
  return owner_token_.load(std::memory_order_relaxed) ==
         reinterpret_cast<uintptr_t>(ts);
}

}  // namespace sheap
