#include "common/status.h"

namespace sheap {

namespace {
const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kIOError:
      return "IOError";
    case Status::Code::kBusy:
      return "Busy";
    case Status::Code::kDeadlock:
      return "Deadlock";
    case Status::Code::kAborted:
      return "Aborted";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kOutOfSpace:
      return "OutOfSpace";
    case Status::Code::kCrashed:
      return "Crashed";
    case Status::Code::kInternal:
      return "Internal";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace sheap
