// Clang thread-safety annotations (a.k.a. capability analysis) for sheap.
//
// The concurrency added in PRs 2-3 (sharded buffer pool, parallel redo,
// flush writer pools) is guarded by locking and ownership disciplines that
// were previously enforced only by review and TSan sampling. These macros
// make the disciplines machine-checked: every mutex is a *capability*,
// every protected field names the capability that guards it, and every
// function that needs a lock held (or forbids one) declares it. Clang's
// -Wthread-safety then rejects, at compile time, any access that violates
// the declared protocol. See DESIGN.md §5e for the lock-rank table and how
// to read the diagnostics.
//
// Build with clang and -DSHEAP_WERROR_THREAD_SAFETY=ON (CMake) to turn the
// analysis into hard errors; under GCC every macro expands to nothing.
//
// Usage is enforced by tools/sheap_lint.py: raw std::mutex /
// std::lock_guard must not appear outside this header — declare
// `sheap::Mutex` members and take them with `sheap::MutexLock`, so every
// lock in the tree participates in the analysis.

#ifndef SHEAP_COMMON_THREAD_ANNOTATIONS_H_
#define SHEAP_COMMON_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define SHEAP_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SHEAP_THREAD_ANNOTATION_(x)  // no-op on GCC/MSVC
#endif

/// Declares a type to be a capability (lockable). Argument is the name the
/// diagnostics use, e.g. SHEAP_CAPABILITY("mutex").
#define SHEAP_CAPABILITY(x) SHEAP_THREAD_ANNOTATION_(capability(x))

/// RAII types that acquire a capability at construction and release it at
/// destruction (our MutexLock below).
#define SHEAP_SCOPED_CAPABILITY SHEAP_THREAD_ANNOTATION_(scoped_lockable)

/// The annotated field may only be read or written while holding `x`.
#define SHEAP_GUARDED_BY(x) SHEAP_THREAD_ANNOTATION_(guarded_by(x))

/// The pointee of the annotated pointer is guarded by `x` (the pointer
/// itself is not).
#define SHEAP_PT_GUARDED_BY(x) SHEAP_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Callers must hold the capability (exclusively) when calling.
#define SHEAP_REQUIRES(...) \
  SHEAP_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Callers must hold the capability at least shared when calling.
#define SHEAP_REQUIRES_SHARED(...) \
  SHEAP_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define SHEAP_ACQUIRE(...) \
  SHEAP_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// The function releases the capability (held on entry).
#define SHEAP_RELEASE(...) \
  SHEAP_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `ret`.
#define SHEAP_TRY_ACQUIRE(ret, ...) \
  SHEAP_THREAD_ANNOTATION_(try_acquire_capability(ret, __VA_ARGS__))

/// Callers must NOT hold the capability (the function takes it itself;
/// documents non-reentrancy and prevents self-deadlock).
#define SHEAP_EXCLUDES(...) \
  SHEAP_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// The annotated mutex may only be acquired after mutexes it is declared
/// to follow (static lock-ordering; pairs with the DESIGN.md rank table).
#define SHEAP_ACQUIRED_AFTER(...) \
  SHEAP_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define SHEAP_ACQUIRED_BEFORE(...) \
  SHEAP_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

/// The function returns a reference to a `x`-guarded field.
#define SHEAP_RETURN_CAPABILITY(x) \
  SHEAP_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function intentionally bypasses the analysis. Always
/// pair with a comment justifying why (e.g. constructor-time publication).
#define SHEAP_NO_THREAD_SAFETY_ANALYSIS \
  SHEAP_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// The member may only be touched from a MutatorGate ExclusiveSection (or
/// outside any gate section, e.g. during Open/recovery before mutators
/// start). Not a clang attribute — tools/sheap_analyze enforces it by
/// proving no SharedSection reaches the field, directly or through calls.
#define SHEAP_GATE_EXCLUSIVE

namespace sheap {

/// The project mutex: std::mutex wrapped as a clang capability. Same cost,
/// same semantics; the wrapper exists so lock()/unlock() carry acquire/
/// release annotations the analysis can follow. All sheap code declares
/// Mutex members and takes them via MutexLock — tools/sheap_lint.py flags
/// raw std::mutex declarations anywhere else.
class SHEAP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SHEAP_ACQUIRE() { mu_.lock(); }
  void unlock() SHEAP_RELEASE() { mu_.unlock(); }
  bool try_lock() SHEAP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped mutex, for CondVar::Wait only.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII guard over Mutex (the annotated std::lock_guard). Scoped to one
/// block; never stored.
class SHEAP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) SHEAP_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() SHEAP_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with sheap::Mutex. Like Mutex, this is the one
/// sanctioned wrapper: raw std::condition_variable is lint-banned outside
/// this header so every wait site goes through an annotated mutex. Wait()
/// takes the Mutex directly (it must be held, per the REQUIRES annotation)
/// and re-holds it on return; the predicate loop stays at the call site,
/// where the analysis can see which guarded fields it reads.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release *mu, block, and re-acquire before returning.
  /// Spurious wakeups happen; callers loop on their predicate.
  void Wait(Mutex* mu) SHEAP_REQUIRES(mu) SHEAP_NO_THREAD_SAFETY_ANALYSIS {
    // std::condition_variable_any would accept Mutex directly but costs an
    // extra internal mutex; instead we rely on Mutex being layout-identical
    // to its wrapped std::mutex and wait on that. The annotation escape is
    // confined to this one line; callers still need the capability held.
    std::unique_lock<std::mutex> lk(mu->native(), std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // ownership returns to the caller's MutexLock
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sheap

#endif  // SHEAP_COMMON_THREAD_ANNOTATIONS_H_
