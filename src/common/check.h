// Fatal assertion macros for internal invariants. These are the invariants a
// correct implementation can never violate regardless of input; user-visible
// failure modes return Status instead.

#ifndef SHEAP_COMMON_CHECK_H_
#define SHEAP_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace sheap::internal {
[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr) {
  std::fprintf(stderr, "SHEAP_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}
}  // namespace sheap::internal

/// Always-on invariant check (cheap comparisons only on hot paths).
#define SHEAP_CHECK(expr)                                       \
  do {                                                          \
    if (!(expr)) {                                              \
      ::sheap::internal::CheckFail(__FILE__, __LINE__, #expr);  \
    }                                                           \
  } while (0)

#define SHEAP_CHECK_OK(expr)                                            \
  do {                                                                  \
    ::sheap::Status _st_chk = (expr);                                   \
    if (!_st_chk.ok()) {                                                \
      std::fprintf(stderr, "SHEAP_CHECK_OK failed at %s:%d: %s\n",      \
                   __FILE__, __LINE__, _st_chk.ToString().c_str());     \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

#ifndef NDEBUG
#define SHEAP_DCHECK(expr) SHEAP_CHECK(expr)
#else
#define SHEAP_DCHECK(expr) \
  do {                     \
  } while (0)
#endif

#endif  // SHEAP_COMMON_CHECK_H_
