// StatusOr<T>: a Status or a value of type T.

#ifndef SHEAP_COMMON_STATUSOR_H_
#define SHEAP_COMMON_STATUSOR_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace sheap {

/// Holds either an error Status or a value. Accessing the value of an
/// error-holding StatusOr is a checked fatal error.
///
/// [[nodiscard]] like Status: a discarded StatusOr silently swallows the
/// error AND leaks the work that produced the value.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intentional implicit
  // conversions mirror absl::StatusOr ergonomics.
  StatusOr(Status status) : status_(std::move(status)) {
    SHEAP_CHECK(!status_.ok());
  }
  // NOLINTNEXTLINE(google-explicit-constructor)
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    SHEAP_CHECK(ok());
    return *value_;
  }
  const T& value() const {
    SHEAP_CHECK(ok());
    return *value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T ValueOrDie() && {
    SHEAP_CHECK(ok());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluate `rexpr` (a StatusOr); on error return the Status, else bind the
/// value to `lhs`.
#define SHEAP_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  SHEAP_ASSIGN_OR_RETURN_IMPL_(                                  \
      SHEAP_CONCAT_(_statusor, __LINE__), lhs, rexpr)
#define SHEAP_CONCAT_INNER_(a, b) a##b
#define SHEAP_CONCAT_(a, b) SHEAP_CONCAT_INNER_(a, b)
#define SHEAP_ASSIGN_OR_RETURN_IMPL_(var, lhs, rexpr) \
  auto var = (rexpr);                                 \
  if (!var.ok()) return var.status();                 \
  lhs = std::move(*var)

}  // namespace sheap

#endif  // SHEAP_COMMON_STATUSOR_H_
