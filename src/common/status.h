// Status: error-code-plus-message result type used across the sheap API.
// No exceptions cross public API boundaries (RocksDB/Arrow idiom).

#ifndef SHEAP_COMMON_STATUS_H_
#define SHEAP_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>

namespace sheap {

/// Result of an operation that can fail. Cheap to copy when OK (no
/// allocation); carries a message string otherwise.
///
/// The class itself is [[nodiscard]]: every function returning a Status by
/// value must have its result consumed — propagated, checked, or voided
/// with an explicit justification. Enforced as an error by
/// -Werror=unused-result (see the top-level CMakeLists).
class [[nodiscard]] Status {
 public:
  enum class Code : uint8_t {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kInvalidArgument = 3,
    kIOError = 4,
    kBusy = 5,            // lock conflict; caller should wait or retry
    kDeadlock = 6,        // victim of deadlock resolution; txn was aborted
    kAborted = 7,         // transaction no longer active
    kNotSupported = 8,
    kOutOfSpace = 9,      // heap/space exhausted even after collection
    kCrashed = 10,        // simulated crash fired mid-operation
    kInternal = 11,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Busy(std::string msg) {
    return Status(Code::kBusy, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(Code::kDeadlock, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status OutOfSpace(std::string msg) {
    return Status(Code::kOutOfSpace, std::move(msg));
  }
  static Status Crashed(std::string msg) {
    return Status(Code::kCrashed, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsDeadlock() const { return code_ == Code::kDeadlock; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsOutOfSpace() const { return code_ == Code::kOutOfSpace; }
  bool IsCrashed() const { return code_ == Code::kCrashed; }
  bool IsInternal() const { return code_ == Code::kInternal; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable "<code>: <message>" string.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

/// Propagate a non-OK Status to the caller.
#define SHEAP_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::sheap::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                      \
  } while (0)

}  // namespace sheap

#endif  // SHEAP_COMMON_STATUS_H_
