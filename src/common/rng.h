// Deterministic pseudo-random number generator (xoshiro256**) used by
// workloads, crash injection, and property tests. Deterministic across
// platforms, unlike std::default_random_engine distributions.

#ifndef SHEAP_COMMON_RNG_H_
#define SHEAP_COMMON_RNG_H_

#include <cstdint>

#include "common/check.h"

namespace sheap {

/// Seeded deterministic RNG. Same seed => same sequence on every platform.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) {
    SHEAP_DCHECK(bound > 0);
    return Next() % bound;
  }

  /// Uniform integer in [lo, hi].
  uint64_t Range(uint64_t lo, uint64_t hi) {
    SHEAP_DCHECK(lo <= hi);
    return lo + Uniform(hi - lo + 1);
  }

  /// True with probability p (0..1).
  bool Bernoulli(double p) {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53 < p;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace sheap

#endif  // SHEAP_COMMON_RNG_H_
