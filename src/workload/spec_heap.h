// SpecHeap: an executable version of the paper's Chapter 6 stable-heap
// *specification* — the abstract object the implementation must refine.
//
// The specification models the heap as a map from oids to objects plus a
// stable root array; transactions carry write sets (read-your-writes,
// all-or-nothing); a crash aborts active transactions and discards exactly
// the volatile state: objects no longer reachable from a stable root
// (paper §2.1, §6.2 "StartAt"/"Oids"). There is no storage management, no
// addresses, no log — which is the point: conformance tests drive the same
// operation stream through SpecHeap and StableHeap and compare observable
// behaviour, an executable stand-in for the thesis's abstraction-function
// argument (Ch. 6, Appendix A).

#ifndef SHEAP_WORKLOAD_SPEC_HEAP_H_
#define SHEAP_WORKLOAD_SPEC_HEAP_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "heap/handle_table.h"
#include "heap/type_registry.h"

namespace sheap::spec {

/// Abstract object identity (never reused).
using Oid = uint64_t;
constexpr Oid kNullOid = 0;

/// An abstract object: a class and a vector of slots. Pointer slots hold
/// Oids; scalar slots hold values. Which is which is the class's business.
struct SpecObject {
  ClassId cls = 0;
  std::vector<uint64_t> slots;
  bool operator==(const SpecObject&) const = default;
};

/// See file comment.
class SpecHeap {
 public:
  explicit SpecHeap(uint64_t root_slots) : roots_(root_slots, kNullOid) {}

  // ------------------------------------------------------------ transactions
  TxnId Begin();
  Status Commit(TxnId txn);
  Status Abort(TxnId txn);

  // ---------------------------------------------------------------- objects
  StatusOr<Oid> Allocate(TxnId txn, ClassId cls, uint64_t nslots);
  StatusOr<uint64_t> ReadSlot(TxnId txn, Oid oid, uint64_t slot);
  Status WriteSlot(TxnId txn, Oid oid, uint64_t slot, uint64_t value);

  // ------------------------------------------------------------------ roots
  StatusOr<Oid> GetRoot(TxnId txn, uint64_t index);
  Status SetRoot(TxnId txn, uint64_t index, Oid oid);

  // ------------------------------------------------------------------ crash
  /// A system failure: active transactions abort; volatile state (objects
  /// unreachable from the stable roots) is lost; stable state survives.
  void Crash(const TypeRegistry& types);

  /// The stable state: oids reachable from the roots (the specification's
  /// "Oids" function). Requires the registry to identify pointer slots.
  std::set<Oid> ReachableFromRoots(const TypeRegistry& types) const;

  const std::vector<Oid>& roots() const { return roots_; }
  size_t committed_objects() const { return objects_.size(); }

  /// Committed value of an object (no transaction view); null if absent.
  const SpecObject* Committed(Oid oid) const;

 private:
  struct SpecTxn {
    std::map<Oid, SpecObject> writes;  // object-granular copy-on-write
    std::vector<Oid> created;
    std::map<uint64_t, Oid> root_writes;
  };

  StatusOr<SpecTxn*> Active(TxnId txn);
  /// The object as this transaction sees it (writes shadow committed).
  StatusOr<const SpecObject*> View(SpecTxn* t, Oid oid) const;
  /// Copy-on-write: the transaction's mutable copy of the object.
  StatusOr<SpecObject*> ViewMutable(SpecTxn* t, Oid oid);

  std::map<Oid, SpecObject> objects_;  // committed state
  std::vector<Oid> roots_;             // committed stable roots
  std::map<TxnId, SpecTxn> active_;
  Oid next_oid_ = 1;
  TxnId next_txn_ = 1;
};

}  // namespace sheap::spec

#endif  // SHEAP_WORKLOAD_SPEC_HEAP_H_
