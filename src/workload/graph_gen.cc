#include "workload/graph_gen.h"

#include <map>

#include "common/check.h"

namespace sheap::workload {

namespace {
uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}
}  // namespace

StatusOr<NodeClass> RegisterNodeClass(StableHeap* heap, uint64_t fanout) {
  std::vector<bool> map(1 + fanout, true);
  map[0] = false;  // slot 0: scalar payload
  SHEAP_ASSIGN_OR_RETURN(ClassId id, heap->RegisterClass(map));
  NodeClass cls;
  cls.id = id;
  cls.fanout = fanout;
  cls.nslots = 1 + fanout;
  return cls;
}

StatusOr<Ref> BuildList(StableHeap* heap, TxnId txn, const NodeClass& cls,
                        uint64_t n) {
  SHEAP_CHECK(cls.fanout >= 1 && n >= 1);
  Ref next = kNullRef;
  for (uint64_t i = n; i-- > 0;) {
    SHEAP_ASSIGN_OR_RETURN(Ref node, heap->Allocate(txn, cls.id, cls.nslots));
    SHEAP_RETURN_IF_ERROR(heap->WriteScalar(txn, node, 0, 1000 + i));
    if (next != kNullRef) {
      SHEAP_RETURN_IF_ERROR(heap->WriteRef(txn, node, 1, next));
    }
    next = node;
  }
  return next;
}

namespace {
StatusOr<Ref> BuildTreeRec(StableHeap* heap, TxnId txn, const NodeClass& cls,
                           uint64_t depth, uint64_t* counter) {
  SHEAP_ASSIGN_OR_RETURN(Ref node, heap->Allocate(txn, cls.id, cls.nslots));
  SHEAP_RETURN_IF_ERROR(heap->WriteScalar(txn, node, 0, (*counter)++));
  if (depth > 0) {
    for (uint64_t i = 0; i < cls.fanout; ++i) {
      SHEAP_ASSIGN_OR_RETURN(
          Ref child, BuildTreeRec(heap, txn, cls, depth - 1, counter));
      SHEAP_RETURN_IF_ERROR(heap->WriteRef(txn, node, 1 + i, child));
    }
  }
  return node;
}
}  // namespace

StatusOr<Ref> BuildTree(StableHeap* heap, TxnId txn, const NodeClass& cls,
                        uint64_t depth) {
  uint64_t counter = 0;
  return BuildTreeRec(heap, txn, cls, depth, &counter);
}

Status BuildRandomGraph(StableHeap* heap, TxnId txn, const NodeClass& cls,
                        uint64_t n, Rng* rng, std::vector<Ref>* out) {
  out->clear();
  for (uint64_t i = 0; i < n; ++i) {
    SHEAP_ASSIGN_OR_RETURN(Ref node, heap->Allocate(txn, cls.id, cls.nslots));
    SHEAP_RETURN_IF_ERROR(heap->WriteScalar(txn, node, 0, rng->Next()));
    out->push_back(node);
    if (i == 0) continue;
    for (uint64_t s = 0; s < cls.fanout; ++s) {
      Ref target = (*out)[rng->Uniform(i)];
      SHEAP_RETURN_IF_ERROR(heap->WriteRef(txn, node, 1 + s, target));
    }
  }
  return Status::OK();
}

StatusOr<uint64_t> GraphChecksum(StableHeap* heap, TxnId txn, Ref root) {
  // Iterative DFS; identity via current heap address (no collections run
  // inside this traversal: it performs no allocation).
  std::map<HeapAddr, uint64_t> visit_number;
  uint64_t hash = 0xcbf29ce484222325ULL;
  std::vector<Ref> stack{root};
  if (root == kNullRef) return hash;
  while (!stack.empty()) {
    Ref ref = stack.back();
    stack.pop_back();
    SHEAP_ASSIGN_OR_RETURN(HeapAddr addr, heap->DebugAddrOf(ref));
    auto [it, fresh] = visit_number.emplace(addr, visit_number.size());
    hash = Mix(hash, it->second);
    if (!fresh) continue;
    // Read the object's shape via the public API.
    SHEAP_ASSIGN_OR_RETURN(uint64_t header, heap->DebugReadWord(addr));
    SHEAP_CHECK(IsHeaderWord(header));
    const ObjectHeader hdr = DecodeHeader(header);
    hash = Mix(hash, hdr.class_id);
    hash = Mix(hash, hdr.nslots);
    for (uint64_t s = 0; s < hdr.nslots; ++s) {
      // Use typed reads so the read barrier and locking run as usual.
      bool is_ptr;
      {
        auto scalar = heap->ReadScalar(txn, ref, s);
        if (scalar.ok()) {
          is_ptr = false;
          hash = Mix(hash, *scalar);
        } else {
          is_ptr = true;
        }
      }
      if (is_ptr) {
        SHEAP_ASSIGN_OR_RETURN(Ref child, heap->ReadRef(txn, ref, s));
        if (child == kNullRef) {
          hash = Mix(hash, 0xfeedULL);
        } else {
          stack.push_back(child);
        }
      }
    }
  }
  return hash;
}

StatusOr<uint64_t> CountReachable(StableHeap* heap, TxnId txn, Ref root) {
  if (root == kNullRef) return 0;
  std::map<HeapAddr, bool> visited;
  std::vector<Ref> stack{root};
  while (!stack.empty()) {
    Ref ref = stack.back();
    stack.pop_back();
    SHEAP_ASSIGN_OR_RETURN(HeapAddr addr, heap->DebugAddrOf(ref));
    if (visited[addr]) continue;
    visited[addr] = true;
    SHEAP_ASSIGN_OR_RETURN(uint64_t header, heap->DebugReadWord(addr));
    const ObjectHeader hdr = DecodeHeader(header);
    for (uint64_t s = 0; s < hdr.nslots; ++s) {
      auto child = heap->ReadRef(txn, ref, s);
      if (!child.ok()) continue;  // scalar slot
      if (*child != kNullRef) stack.push_back(*child);
    }
  }
  return visited.size();
}

}  // namespace sheap::workload
