// Canned application workloads, shared by tests, benchmarks and examples:
// a debit-credit bank (TPC-A-style OLTP, used for durability/atomicity
// checks — total balance is invariant) and a CAD-style assembly hierarchy
// (large shared object graphs, used for traversal/GC pressure).

#ifndef SHEAP_WORKLOAD_WORKLOADS_H_
#define SHEAP_WORKLOAD_WORKLOADS_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "common/statusor.h"
#include "core/stable_heap.h"
#include "workload/graph_gen.h"

namespace sheap::workload {

/// Debit-credit bank over the stable heap. Accounts live in fixed-size
/// buckets hanging off stable root `root_index`.
class Bank {
 public:
  Bank(StableHeap* heap, uint64_t root_index)
      : heap_(heap), root_index_(root_index) {}

  /// Create `n` accounts, each with `initial_balance`, and commit.
  Status Setup(uint64_t n, uint64_t initial_balance);

  /// Attach to an existing bank (after reopen/recovery).
  Status Attach();

  /// Transfer `amount` between two accounts in one transaction.
  /// `abort_instead` rolls the transaction back rather than committing.
  Status Transfer(uint64_t from, uint64_t to, uint64_t amount,
                  bool abort_instead = false);

  /// Sum of every account balance (one read-only transaction).
  StatusOr<uint64_t> TotalBalance();

  StatusOr<uint64_t> BalanceOf(uint64_t account);

  uint64_t accounts() const { return accounts_; }

 private:
  static constexpr uint64_t kBucketSize = 64;

  /// Get a handle to the bucket holding `account` within `txn`.
  StatusOr<Ref> Bucket(TxnId txn, uint64_t account);

  StableHeap* heap_;
  uint64_t root_index_;
  uint64_t accounts_ = 0;
};

/// CAD assembly: a hierarchy of assemblies whose leaves are composite
/// parts, with composite parts *shared* between assemblies (the sharing the
/// copying collector must preserve, Figure 3.1).
struct CadDesign {
  Ref root = kNullRef;           // valid within the building transaction
  uint64_t assemblies = 0;
  uint64_t composites = 0;
};

/// Build a design under stable root `root_index` and commit.
/// depth levels of assemblies with `fanout` children; `ncomposites`
/// composite parts shared among the leaf assemblies.
StatusOr<CadDesign> BuildCadDesign(StableHeap* heap, const NodeClass& cls,
                                   uint64_t root_index, uint64_t depth,
                                   uint64_t fanout, uint64_t ncomposites,
                                   Rng* rng);

}  // namespace sheap::workload

#endif  // SHEAP_WORKLOAD_WORKLOADS_H_
