#include "workload/spec_heap.h"

#include "common/check.h"

namespace sheap::spec {

TxnId SpecHeap::Begin() {
  const TxnId id = next_txn_++;
  active_[id] = SpecTxn();
  return id;
}

StatusOr<SpecHeap::SpecTxn*> SpecHeap::Active(TxnId txn) {
  auto it = active_.find(txn);
  if (it == active_.end()) return Status::Aborted("spec: txn not active");
  return &it->second;
}

Status SpecHeap::Commit(TxnId txn) {
  SHEAP_ASSIGN_OR_RETURN(SpecTxn * t, Active(txn));
  for (auto& [oid, obj] : t->writes) objects_[oid] = obj;
  for (auto& [index, oid] : t->root_writes) roots_[index] = oid;
  active_.erase(txn);
  return Status::OK();
}

Status SpecHeap::Abort(TxnId txn) {
  SHEAP_ASSIGN_OR_RETURN(SpecTxn * t, Active(txn));
  for (Oid oid : t->created) objects_.erase(oid);  // never committed
  active_.erase(txn);
  return Status::OK();
}

StatusOr<Oid> SpecHeap::Allocate(TxnId txn, ClassId cls, uint64_t nslots) {
  SHEAP_ASSIGN_OR_RETURN(SpecTxn * t, Active(txn));
  const Oid oid = next_oid_++;
  SpecObject obj;
  obj.cls = cls;
  obj.slots.assign(nslots, 0);
  t->writes[oid] = obj;
  t->created.push_back(oid);
  return oid;
}

StatusOr<const SpecObject*> SpecHeap::View(SpecTxn* t, Oid oid) const {
  auto wit = t->writes.find(oid);
  if (wit != t->writes.end()) return &wit->second;
  auto cit = objects_.find(oid);
  if (cit == objects_.end()) return Status::NotFound("spec: no such object");
  return &cit->second;
}

StatusOr<SpecObject*> SpecHeap::ViewMutable(SpecTxn* t, Oid oid) {
  auto wit = t->writes.find(oid);
  if (wit != t->writes.end()) return &wit->second;
  auto cit = objects_.find(oid);
  if (cit == objects_.end()) return Status::NotFound("spec: no such object");
  auto [ins, fresh] = t->writes.emplace(oid, cit->second);
  SHEAP_CHECK(fresh);
  return &ins->second;
}

StatusOr<uint64_t> SpecHeap::ReadSlot(TxnId txn, Oid oid, uint64_t slot) {
  SHEAP_ASSIGN_OR_RETURN(SpecTxn * t, Active(txn));
  SHEAP_ASSIGN_OR_RETURN(const SpecObject* obj, View(t, oid));
  if (slot >= obj->slots.size()) {
    return Status::InvalidArgument("spec: slot out of range");
  }
  return obj->slots[slot];
}

Status SpecHeap::WriteSlot(TxnId txn, Oid oid, uint64_t slot,
                           uint64_t value) {
  SHEAP_ASSIGN_OR_RETURN(SpecTxn * t, Active(txn));
  SHEAP_ASSIGN_OR_RETURN(SpecObject * obj, ViewMutable(t, oid));
  if (slot >= obj->slots.size()) {
    return Status::InvalidArgument("spec: slot out of range");
  }
  obj->slots[slot] = value;
  return Status::OK();
}

StatusOr<Oid> SpecHeap::GetRoot(TxnId txn, uint64_t index) {
  SHEAP_ASSIGN_OR_RETURN(SpecTxn * t, Active(txn));
  if (index >= roots_.size()) {
    return Status::InvalidArgument("spec: root out of range");
  }
  auto rit = t->root_writes.find(index);
  if (rit != t->root_writes.end()) return rit->second;
  return roots_[index];
}

Status SpecHeap::SetRoot(TxnId txn, uint64_t index, Oid oid) {
  SHEAP_ASSIGN_OR_RETURN(SpecTxn * t, Active(txn));
  if (index >= roots_.size()) {
    return Status::InvalidArgument("spec: root out of range");
  }
  t->root_writes[index] = oid;
  return Status::OK();
}

std::set<Oid> SpecHeap::ReachableFromRoots(const TypeRegistry& types) const {
  std::set<Oid> seen;
  std::vector<Oid> worklist;
  for (Oid r : roots_) {
    if (r != kNullOid) worklist.push_back(r);
  }
  while (!worklist.empty()) {
    Oid oid = worklist.back();
    worklist.pop_back();
    if (!seen.insert(oid).second) continue;
    auto it = objects_.find(oid);
    SHEAP_CHECK(it != objects_.end());
    const SpecObject& obj = it->second;
    for (uint64_t s = 0; s < obj.slots.size(); ++s) {
      if (types.IsPointerSlot(obj.cls, s) && obj.slots[s] != kNullOid) {
        worklist.push_back(obj.slots[s]);
      }
    }
  }
  return seen;
}

void SpecHeap::Crash(const TypeRegistry& types) {
  // Active transactions have no effect (their writes were never merged).
  active_.clear();
  // The volatile state is lost: only objects reachable from stable roots
  // survive (paper §2.1: "The stable state ... consists of all objects
  // accessible from the stable roots").
  std::set<Oid> stable = ReachableFromRoots(types);
  for (auto it = objects_.begin(); it != objects_.end();) {
    if (stable.count(it->first) == 0) {
      it = objects_.erase(it);
    } else {
      ++it;
    }
  }
}

const SpecObject* SpecHeap::Committed(Oid oid) const {
  auto it = objects_.find(oid);
  return it == objects_.end() ? nullptr : &it->second;
}

}  // namespace sheap::spec
