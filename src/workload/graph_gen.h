// Synthetic object-graph builders and verification helpers used by tests,
// benchmarks and examples: linked lists, trees, random graphs with sharing,
// and a structure checksum that detects lost objects, lost sharing, or
// corrupted scalars after collections and crashes.

#ifndef SHEAP_WORKLOAD_GRAPH_GEN_H_
#define SHEAP_WORKLOAD_GRAPH_GEN_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/statusor.h"
#include "core/stable_heap.h"

namespace sheap::workload {

/// Node class used by the generators: slot 0 = scalar payload,
/// slots 1..fanout = pointers. Register once per heap.
struct NodeClass {
  ClassId id = 0;
  uint64_t fanout = 0;
  uint64_t nslots = 0;  // 1 + fanout
};

/// Register a node class with the given pointer fanout.
StatusOr<NodeClass> RegisterNodeClass(StableHeap* heap, uint64_t fanout);

/// Build a singly linked list of `n` nodes; payloads are 1000+i. Returns
/// the head. Allocates with Allocate() (volatile in a divided heap).
StatusOr<Ref> BuildList(StableHeap* heap, TxnId txn, const NodeClass& cls,
                        uint64_t n);

/// Build a complete tree of the given depth (fanout = cls.fanout).
/// Payloads are preorder indices.
StatusOr<Ref> BuildTree(StableHeap* heap, TxnId txn, const NodeClass& cls,
                        uint64_t depth);

/// Build `n` nodes with every pointer slot wired to a random earlier node
/// (guaranteeing reachability from node 0 is NOT implied; returns all refs).
Status BuildRandomGraph(StableHeap* heap, TxnId txn, const NodeClass& cls,
                        uint64_t n, Rng* rng, std::vector<Ref>* out);

/// Structure checksum of the graph reachable from `root`: combines each
/// object's class, slot count, scalar contents, and topology (targets are
/// hashed by first-visit number, so shared subobjects and cycles hash
/// differently from copies). Two isomorphic graphs get equal checksums.
StatusOr<uint64_t> GraphChecksum(StableHeap* heap, TxnId txn, Ref root);

/// Number of objects reachable from `root`.
StatusOr<uint64_t> CountReachable(StableHeap* heap, TxnId txn, Ref root);

}  // namespace sheap::workload

#endif  // SHEAP_WORKLOAD_GRAPH_GEN_H_
