#include "workload/workloads.h"

#include "common/check.h"

namespace sheap::workload {

// ----------------------------------------------------------------- Bank
//
// Layout: root[root_index] -> directory (ptr array) -> buckets
// (data arrays of kBucketSize balances).

Status Bank::Setup(uint64_t n, uint64_t initial_balance) {
  accounts_ = n;
  const uint64_t nbuckets = (n + kBucketSize - 1) / kBucketSize;
  SHEAP_ASSIGN_OR_RETURN(TxnId txn, heap_->Begin());
  SHEAP_ASSIGN_OR_RETURN(Ref dir,
                         heap_->Allocate(txn, kClassPtrArray, nbuckets));
  for (uint64_t b = 0; b < nbuckets; ++b) {
    SHEAP_ASSIGN_OR_RETURN(
        Ref bucket, heap_->Allocate(txn, kClassDataArray, kBucketSize));
    for (uint64_t i = 0; i < kBucketSize; ++i) {
      const uint64_t account = b * kBucketSize + i;
      if (account >= n) break;
      SHEAP_RETURN_IF_ERROR(
          heap_->WriteScalar(txn, bucket, i, initial_balance));
    }
    SHEAP_RETURN_IF_ERROR(heap_->WriteRef(txn, dir, b, bucket));
  }
  SHEAP_RETURN_IF_ERROR(heap_->SetRoot(txn, root_index_, dir));
  return heap_->CommitSync(txn);
}

Status Bank::Attach() {
  SHEAP_ASSIGN_OR_RETURN(TxnId txn, heap_->Begin());
  SHEAP_ASSIGN_OR_RETURN(Ref dir, heap_->GetRoot(txn, root_index_));
  if (dir == kNullRef) {
    SHEAP_RETURN_IF_ERROR(heap_->Abort(txn));
    return Status::NotFound("no bank under this root");
  }
  SHEAP_ASSIGN_OR_RETURN(HeapAddr dir_addr, heap_->DebugAddrOf(dir));
  SHEAP_ASSIGN_OR_RETURN(uint64_t header, heap_->DebugReadWord(dir_addr));
  accounts_ = DecodeHeader(header).nslots * kBucketSize;
  return heap_->CommitSync(txn);
}

StatusOr<Ref> Bank::Bucket(TxnId txn, uint64_t account) {
  SHEAP_ASSIGN_OR_RETURN(Ref dir, heap_->GetRoot(txn, root_index_));
  if (dir == kNullRef) return Status::NotFound("bank not set up");
  return heap_->ReadRef(txn, dir, account / kBucketSize);
}

Status Bank::Transfer(uint64_t from, uint64_t to, uint64_t amount,
                      bool abort_instead) {
  SHEAP_ASSIGN_OR_RETURN(TxnId txn, heap_->Begin());
  auto body = [&]() -> Status {
    SHEAP_ASSIGN_OR_RETURN(Ref fb, Bucket(txn, from));
    SHEAP_ASSIGN_OR_RETURN(Ref tb, Bucket(txn, to));
    SHEAP_ASSIGN_OR_RETURN(
        uint64_t fbal, heap_->ReadScalar(txn, fb, from % kBucketSize));
    SHEAP_ASSIGN_OR_RETURN(uint64_t tbal,
                           heap_->ReadScalar(txn, tb, to % kBucketSize));
    if (fbal < amount) return Status::InvalidArgument("insufficient funds");
    SHEAP_RETURN_IF_ERROR(
        heap_->WriteScalar(txn, fb, from % kBucketSize, fbal - amount));
    SHEAP_RETURN_IF_ERROR(
        heap_->WriteScalar(txn, tb, to % kBucketSize, tbal + amount));
    return Status::OK();
  };
  Status st = body();
  if (!st.ok()) {
    // Best-effort rollback: the body's error is what the caller needs;
    // a failed abort leaves the txn for recovery (audited discard).
    (void)heap_->Abort(txn);
    return st;
  }
  if (abort_instead) return heap_->Abort(txn);
  return heap_->CommitSync(txn);
}

StatusOr<uint64_t> Bank::TotalBalance() {
  SHEAP_ASSIGN_OR_RETURN(TxnId txn, heap_->Begin());
  uint64_t total = 0;
  auto body = [&]() -> Status {
    for (uint64_t a = 0; a < accounts_; ++a) {
      SHEAP_ASSIGN_OR_RETURN(Ref bucket, Bucket(txn, a));
      SHEAP_ASSIGN_OR_RETURN(uint64_t bal,
                             heap_->ReadScalar(txn, bucket,
                                               a % kBucketSize));
      total += bal;
    }
    return Status::OK();
  };
  Status st = body();
  if (!st.ok()) {
    // Best-effort rollback: the body's error is what the caller needs;
    // a failed abort leaves the txn for recovery (audited discard).
    (void)heap_->Abort(txn);
    return st;
  }
  SHEAP_RETURN_IF_ERROR(heap_->CommitSync(txn));
  return total;
}

StatusOr<uint64_t> Bank::BalanceOf(uint64_t account) {
  SHEAP_ASSIGN_OR_RETURN(TxnId txn, heap_->Begin());
  auto result = [&]() -> StatusOr<uint64_t> {
    SHEAP_ASSIGN_OR_RETURN(Ref bucket, Bucket(txn, account));
    return heap_->ReadScalar(txn, bucket, account % kBucketSize);
  }();
  if (!result.ok()) {
    // Best-effort rollback, as above (audited discard).
    (void)heap_->Abort(txn);
    return result;
  }
  SHEAP_RETURN_IF_ERROR(heap_->CommitSync(txn));
  return result;
}

// ------------------------------------------------------------ CAD design

namespace {

StatusOr<Ref> BuildAssembly(StableHeap* heap, TxnId txn,
                            const NodeClass& cls, uint64_t depth,
                            uint64_t fanout,
                            const std::vector<Ref>& composites, Rng* rng,
                            uint64_t* assemblies) {
  SHEAP_ASSIGN_OR_RETURN(Ref node, heap->Allocate(txn, cls.id, cls.nslots));
  SHEAP_RETURN_IF_ERROR(heap->WriteScalar(txn, node, 0, (*assemblies)++));
  const uint64_t children = std::min<uint64_t>(fanout, cls.fanout);
  for (uint64_t i = 0; i < children; ++i) {
    if (depth == 0) {
      // Leaf assembly: reference shared composite parts.
      Ref part = composites[rng->Uniform(composites.size())];
      SHEAP_RETURN_IF_ERROR(heap->WriteRef(txn, node, 1 + i, part));
    } else {
      SHEAP_ASSIGN_OR_RETURN(
          Ref child, BuildAssembly(heap, txn, cls, depth - 1, fanout,
                                   composites, rng, assemblies));
      SHEAP_RETURN_IF_ERROR(heap->WriteRef(txn, node, 1 + i, child));
    }
  }
  return node;
}

}  // namespace

StatusOr<CadDesign> BuildCadDesign(StableHeap* heap, const NodeClass& cls,
                                   uint64_t root_index, uint64_t depth,
                                   uint64_t fanout, uint64_t ncomposites,
                                   Rng* rng) {
  SHEAP_CHECK(ncomposites > 0);
  CadDesign design;
  SHEAP_ASSIGN_OR_RETURN(TxnId txn, heap->Begin());
  // Composite parts: small graphs of their own (a part + attached atoms).
  std::vector<Ref> composites;
  for (uint64_t i = 0; i < ncomposites; ++i) {
    SHEAP_ASSIGN_OR_RETURN(Ref part, heap->Allocate(txn, cls.id, cls.nslots));
    SHEAP_RETURN_IF_ERROR(heap->WriteScalar(txn, part, 0, 7'000'000 + i));
    for (uint64_t s = 0; s < cls.fanout && s < 2; ++s) {
      SHEAP_ASSIGN_OR_RETURN(Ref atom,
                             heap->Allocate(txn, cls.id, cls.nslots));
      SHEAP_RETURN_IF_ERROR(heap->WriteScalar(txn, atom, 0, rng->Next()));
      SHEAP_RETURN_IF_ERROR(heap->WriteRef(txn, part, 1 + s, atom));
    }
    composites.push_back(part);
  }
  SHEAP_ASSIGN_OR_RETURN(
      Ref root, BuildAssembly(heap, txn, cls, depth, fanout, composites, rng,
                              &design.assemblies));
  SHEAP_RETURN_IF_ERROR(heap->SetRoot(txn, root_index, root));
  SHEAP_RETURN_IF_ERROR(heap->CommitSync(txn));
  design.root = root;  // note: handle released by commit; informational
  design.composites = ncomposites;
  return design;
}

}  // namespace sheap::workload
