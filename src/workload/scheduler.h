// Deterministic multi-transaction interleaving (paper §2.1: transactions
// are sequences of indivisible low-level actions; context switches happen
// only at action boundaries). The scheduler runs several client scripts,
// choosing the next client with a seeded RNG, retrying actions that hit
// lock conflicts and restarting clients chosen as deadlock victims — the
// same behaviour a transactional runtime would exhibit, but reproducible.

#ifndef SHEAP_WORKLOAD_SCHEDULER_H_
#define SHEAP_WORKLOAD_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/stable_heap.h"

namespace sheap::workload {

/// One scripted low-level action. Operand meaning depends on the kind;
/// `dst`/`src`/`obj` are indices into the client's variable table (Refs).
struct Op {
  enum class Kind : uint8_t {
    kBegin,
    kCommit,
    kAbort,
    kAllocate,        // vars[dst] = Allocate(cls, nslots)
    kAllocateStable,  // vars[dst] = AllocateStable(cls, nslots)
    kWriteRef,        // obj.slot = vars[src]   (src == ~0ull => null)
    kWriteScalar,     // obj.slot = value
    kReadRef,         // vars[dst] = obj.slot
    kReadScalar,      // scratch = obj.slot
    kSetRoot,         // root[index] = vars[src]
    kGetRoot,         // vars[dst] = root[index]
  };

  Kind kind;
  uint64_t dst = 0;
  uint64_t obj = 0;
  uint64_t slot = 0;
  uint64_t src = 0;
  uint64_t value = 0;  // scalar value / class id / root index
  uint64_t extra = 0;  // nslots

  static Op Begin() { return {Kind::kBegin}; }
  static Op Commit() { return {Kind::kCommit}; }
  static Op AbortTxn() { return {Kind::kAbort}; }
  static Op Allocate(uint64_t dst, uint64_t cls, uint64_t nslots) {
    Op op{Kind::kAllocate};
    op.dst = dst;
    op.value = cls;
    op.extra = nslots;
    return op;
  }
  static Op AllocateStable(uint64_t dst, uint64_t cls, uint64_t nslots) {
    Op op{Kind::kAllocateStable};
    op.dst = dst;
    op.value = cls;
    op.extra = nslots;
    return op;
  }
  static Op WriteRef(uint64_t obj, uint64_t slot, uint64_t src) {
    Op op{Kind::kWriteRef};
    op.obj = obj;
    op.slot = slot;
    op.src = src;
    return op;
  }
  static Op WriteNull(uint64_t obj, uint64_t slot) {
    return WriteRef(obj, slot, ~0ull);
  }
  static Op WriteScalar(uint64_t obj, uint64_t slot, uint64_t value) {
    Op op{Kind::kWriteScalar};
    op.obj = obj;
    op.slot = slot;
    op.value = value;
    return op;
  }
  static Op ReadRef(uint64_t dst, uint64_t obj, uint64_t slot) {
    Op op{Kind::kReadRef};
    op.dst = dst;
    op.obj = obj;
    op.slot = slot;
    return op;
  }
  static Op ReadScalar(uint64_t obj, uint64_t slot) {
    Op op{Kind::kReadScalar};
    op.obj = obj;
    op.slot = slot;
    return op;
  }
  static Op SetRoot(uint64_t index, uint64_t src) {
    Op op{Kind::kSetRoot};
    op.value = index;
    op.src = src;
    return op;
  }
  static Op GetRoot(uint64_t dst, uint64_t index) {
    Op op{Kind::kGetRoot};
    op.dst = dst;
    op.value = index;
    return op;
  }
};

struct SchedulerStats {
  uint64_t actions_run = 0;
  uint64_t busy_retries = 0;
  uint64_t deadlock_restarts = 0;
  uint64_t clients_completed = 0;
};

/// Interleaves client scripts at action granularity.
class Scheduler {
 public:
  Scheduler(StableHeap* heap, uint64_t seed) : heap_(heap), rng_(seed) {}

  /// Register a client; returns its index.
  size_t AddClient(std::vector<Op> script);

  /// Run until every client completes its script (committing or aborting
  /// as scripted). Deadlock victims are rolled back and restarted from
  /// their kBegin. Fails if progress stalls for `stall_limit` consecutive
  /// choices.
  Status Run(uint64_t stall_limit = 100000);

  const SchedulerStats& stats() const { return stats_; }

 private:
  struct Client {
    std::vector<Op> script;
    size_t pc = 0;
    TxnId txn = kNoTxn;
    std::map<uint64_t, Ref> vars;
    bool done = false;
  };

  /// Execute one action for the client. Returns kBusy to retry later.
  Status StepClient(Client* client);
  StatusOr<Ref> Var(Client* client, uint64_t index) const;

  StableHeap* heap_;
  Rng rng_;
  std::vector<Client> clients_;
  SchedulerStats stats_;
};

}  // namespace sheap::workload

#endif  // SHEAP_WORKLOAD_SCHEDULER_H_
