#include "workload/scheduler.h"

#include "common/check.h"

namespace sheap::workload {

size_t Scheduler::AddClient(std::vector<Op> script) {
  Client client;
  client.script = std::move(script);
  clients_.push_back(std::move(client));
  return clients_.size() - 1;
}

StatusOr<Ref> Scheduler::Var(Client* client, uint64_t index) const {
  if (index == ~0ull) return kNullRef;
  auto it = client->vars.find(index);
  if (it == client->vars.end()) {
    return Status::InvalidArgument("script references unset variable");
  }
  return it->second;
}

Status Scheduler::StepClient(Client* client) {
  const Op& op = client->script[client->pc];
  switch (op.kind) {
    case Op::Kind::kBegin: {
      SHEAP_ASSIGN_OR_RETURN(client->txn, heap_->Begin());
      break;
    }
    case Op::Kind::kCommit:
      SHEAP_RETURN_IF_ERROR(heap_->Commit(client->txn));
      client->txn = kNoTxn;
      client->vars.clear();
      break;
    case Op::Kind::kAbort:
      SHEAP_RETURN_IF_ERROR(heap_->Abort(client->txn));
      client->txn = kNoTxn;
      client->vars.clear();
      break;
    case Op::Kind::kAllocate: {
      SHEAP_ASSIGN_OR_RETURN(
          Ref ref, heap_->Allocate(client->txn,
                                   static_cast<ClassId>(op.value), op.extra));
      client->vars[op.dst] = ref;
      break;
    }
    case Op::Kind::kAllocateStable: {
      SHEAP_ASSIGN_OR_RETURN(
          Ref ref, heap_->AllocateStable(
                       client->txn, static_cast<ClassId>(op.value), op.extra));
      client->vars[op.dst] = ref;
      break;
    }
    case Op::Kind::kWriteRef: {
      SHEAP_ASSIGN_OR_RETURN(Ref obj, Var(client, op.obj));
      SHEAP_ASSIGN_OR_RETURN(Ref src, Var(client, op.src));
      SHEAP_RETURN_IF_ERROR(heap_->WriteRef(client->txn, obj, op.slot, src));
      break;
    }
    case Op::Kind::kWriteScalar: {
      SHEAP_ASSIGN_OR_RETURN(Ref obj, Var(client, op.obj));
      SHEAP_RETURN_IF_ERROR(
          heap_->WriteScalar(client->txn, obj, op.slot, op.value));
      break;
    }
    case Op::Kind::kReadRef: {
      SHEAP_ASSIGN_OR_RETURN(Ref obj, Var(client, op.obj));
      SHEAP_ASSIGN_OR_RETURN(Ref out,
                             heap_->ReadRef(client->txn, obj, op.slot));
      client->vars[op.dst] = out;
      break;
    }
    case Op::Kind::kReadScalar: {
      SHEAP_ASSIGN_OR_RETURN(Ref obj, Var(client, op.obj));
      SHEAP_RETURN_IF_ERROR(
          heap_->ReadScalar(client->txn, obj, op.slot).status());
      break;
    }
    case Op::Kind::kSetRoot: {
      SHEAP_ASSIGN_OR_RETURN(Ref src, Var(client, op.src));
      SHEAP_RETURN_IF_ERROR(heap_->SetRoot(client->txn, op.value, src));
      break;
    }
    case Op::Kind::kGetRoot: {
      SHEAP_ASSIGN_OR_RETURN(Ref out, heap_->GetRoot(client->txn, op.value));
      client->vars[op.dst] = out;
      break;
    }
  }
  ++client->pc;
  if (client->pc == client->script.size()) {
    client->done = true;
    ++stats_.clients_completed;
  }
  return Status::OK();
}

Status Scheduler::Run(uint64_t stall_limit) {
  uint64_t stalled = 0;
  while (true) {
    std::vector<size_t> runnable;
    for (size_t i = 0; i < clients_.size(); ++i) {
      if (!clients_[i].done) runnable.push_back(i);
    }
    if (runnable.empty()) return Status::OK();
    Client* client = &clients_[runnable[rng_.Uniform(runnable.size())]];

    Status st = StepClient(client);
    ++stats_.actions_run;
    if (st.ok()) {
      stalled = 0;
      continue;
    }
    if (st.IsBusy()) {
      ++stats_.busy_retries;
      if (++stalled > stall_limit) {
        return Status::Internal("scheduler stalled on lock conflicts");
      }
      continue;  // retry this action later
    }
    if (st.IsDeadlock()) {
      // Victim: roll back and restart the script from its begin.
      ++stats_.deadlock_restarts;
      if (client->txn != kNoTxn) {
        SHEAP_RETURN_IF_ERROR(heap_->Abort(client->txn));
        client->txn = kNoTxn;
      }
      client->vars.clear();
      client->pc = 0;
      stalled = 0;
      continue;
    }
    return st;
  }
}

}  // namespace sheap::workload
