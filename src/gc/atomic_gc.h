// AtomicGc: the atomic incremental copying collector (paper Chapter 3).
//
// Based on the Ellis-Li-Appel incremental collector: at a flip the root set
// is translated to to-space and every to-space page is "protected"
// (unscanned); the collector scans pages incrementally, and a mutator access
// to an unscanned page traps and scans that page (§3.2.1). To-space uses
// Baker's layout (Figure 3.3): copies fill the low end, mutator allocations
// fill the high end and are born scanned.
//
// The collector is *atomic* because each step follows the write-ahead log
// protocol (§3.4):
//   * a copy step logs kGcCopy{from, to, n, contents}: redo re-creates the
//     to-space copy from the record and re-writes the forwarding pointer, so
//     neither a lost forwarding pointer (Fig 3.4) nor a lost object
//     descriptor (Fig 3.5) can occur;
//   * a scan step logs kGcScan{page, translations}: redo re-applies the
//     pointer translations, and analysis re-marks the page scanned;
//   * the flip logs kGcFlip plus kUtr records translating the addresses in
//     active transactions' undo information (undo roots are GC roots,
//     §3.5.2 / §4.2.1) and a kRootObject record re-anchoring the stable
//     root array.
// No step forces the log; the collector never performs a synchronous write
// (the contrast with Detlefs [15] measured in E7).

#ifndef SHEAP_GC_ATOMIC_GC_H_
#define SHEAP_GC_ATOMIC_GC_H_

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "gc/gc.h"
#include "heap/object.h"
#include "txn/txn.h"
#include "util/bitmap.h"

namespace sheap {

class MutatorGate;
class ScanExecutor;

/// Atomic incremental copying collector for the stable area.
class AtomicGc {
 public:
  struct Options {
    /// Pages per semispace. A flip allocates max(this, old space pages).
    uint64_t space_pages = 1024;
    /// Slots in the distinguished stable root array.
    uint64_t root_slots = 64;
    /// Ellis page-protection barrier (default) or Baker per-access (§3.8).
    GcBarrierMode barrier = GcBarrierMode::kPageProtection;
    /// Write-ahead logging (this paper) or Detlefs-style synchronous
    /// writes (E7 comparator).
    GcDurability durability = GcDurability::kWriteAheadLog;
    /// Scan workers for the background scan (WAL mode). The executor runs
    /// for every value including 1, and its log/disk bytes are identical
    /// for every value (DESIGN.md §5f); threads only change wall/sim time.
    uint32_t threads = 1;
    /// Coalesce the executor's records (kGcCopyBatch + clean-run kGcScan).
    /// Off reverts to per-object kGcCopy encoding — kept selectable so E14
    /// can measure the log-volume win under the same scan order.
    bool batch_records = true;
  };

  AtomicGc(const GcContext& ctx, const Options& opts);
  ~AtomicGc();

  /// One-time heap format: allocates the first stable space and the root
  /// array object; logs kRootObject.
  Status Format();

  // ---------------------------------------------------------------- mutator
  /// Allocate a new object (Baker high end). Logged as kAlloc, chained into
  /// `txn`'s record chain (txn may be nullptr for system allocations).
  StatusOr<HeapAddr> AllocateObject(Txn* txn, ClassId cls, uint64_t nslots);

  /// Read barrier (Ellis trap): before the mutator touches the word at `a`,
  /// make sure its page is scanned. No-op when not collecting or when the
  /// barrier mode is per-access.
  Status EnsureAccess(HeapAddr a);

  /// Read barrier, slot-granular: called before every slot read/write. In
  /// page-protection mode this is EnsureAccess; in Baker mode it charges
  /// the per-reference check and translates a from-space pointer value in
  /// place (copying its target).
  Status EnsureSlotAccess(HeapAddr slot_addr, bool is_pointer);

  // ------------------------------------------------------------- collection
  /// Begin a collection: allocate to-space, log kGcFlip, translate roots,
  /// log UTRs. Fails if already collecting.
  Status Flip();

  /// Scan up to `max_pages` pages; completes the collection when nothing is
  /// left. Returns whether a collection is still in progress. In WAL mode
  /// the pages are processed in ScanExecutor rounds (parallel when
  /// Options::threads > 1); the Detlefs comparator keeps the serial path.
  StatusOr<bool> Step(uint64_t max_pages);

  /// Adaptive pacing (Baker §3.3 coupling): convert `upcoming_alloc_bytes`
  /// of imminent allocation into a scan budget of k pages per allocated
  /// page, where k is sized from the unscanned estimate and the free
  /// headroom so the collection finishes before space runs out. Fractions
  /// carry over between calls. Returns 0 when no collection is active.
  uint64_t PacingBudgetPages(uint64_t upcoming_alloc_bytes);

  /// Drain the current collection (no-op when idle).
  Status FinishCollection();

  /// Stop-the-world driver: Flip (if idle) then drain, as one pause.
  /// This is the baseline of the earlier Kolodner-Liskov-Weihl collector.
  Status CollectFully();

  /// If `base` is an unforwarded from-space object, copy it now; returns
  /// the object's current address. Used for external roots (promotion,
  /// volatile-collector cross-references).
  StatusOr<HeapAddr> ResolveAndCopy(HeapAddr base);

  /// Reserve stable-area words for an object being promoted from the
  /// volatile area (§5.2). Bump-allocates like AllocateObject but emits no
  /// record of its own: the caller's kV2sCopy record carries the redo, and
  /// analysis replays it against the allocation frontier.
  ///
  /// `page_isolated` (method-2 promotion): the reservation must not share
  /// a page with normally-logged objects — a neighbour's logged write
  /// would raise the shared pageLSN past the pending object's
  /// initial-value record and suppress its redo. Transitions between
  /// isolated and normal allocation round the frontier down to a page
  /// boundary.
  StatusOr<HeapAddr> AllocateForPromotion(uint64_t total_words,
                                          bool page_isolated = false);

  /// After pending objects are materialized their pages carry normally
  /// logged data; the next isolated reservation must start a fresh page.
  void ResetAllocIsolation() { alloc_isolation_ = false; }

  // ------------------------------------------------------------- recovery
  struct RecoveredState {
    SemiSpaceState sem;
    HeapAddr root_object = kNullAddr;
    std::vector<uint8_t> scanned;  // 0/1 per page of the current space
    std::vector<HeapAddr> lot;     // Last Object Table, per page
  };

  /// Install state reconstructed by recovery analysis.
  void InstallRecovered(RecoveredState rs);

  /// Resume an interrupted collection after recovery: a crash can retain
  /// the flip record while losing the root-array copy (log-suffix loss);
  /// re-translate the root object if it still names a from-space address.
  Status ResumeAfterRecovery();

  /// Checkpoint payload (matches RecoveredState).
  void EncodeTo(Encoder* enc) const;
  static Status DecodeInto(Decoder* dec, RecoveredState* rs);

  // ------------------------------------------------------------ concurrency
  /// Attach the heap's GC<->mutator handshake gate (DESIGN.md §5i). The
  /// collector does not acquire it — core::StableHeap owns entry-point
  /// gating — but structural transitions (Flip, Step, CollectFully) assert
  /// the caller holds it exclusively, so a mutator thread can never race a
  /// flip or a scan round's resolve/apply phase. Null (the default) skips
  /// the assertion; a disabled gate reports trivially-exclusive.
  void AttachGate(const MutatorGate* gate) { gate_ = gate; }

  // ---------------------------------------------------------------- queries
  bool collecting() const { return sem_.collecting(); }
  const SemiSpaceState& sem() const { return sem_; }
  HeapAddr root_object() const { return root_object_; }
  uint64_t free_bytes() const { return sem_.free_bytes(); }
  GcStats& stats() { return stats_; }
  const Options& options() const { return opts_; }

  /// True if `a` lies in the active collection's from-space.
  bool InFromSpace(HeapAddr a) const;
  /// True if `a` lies in the current (to-)space.
  bool InCurrentSpace(HeapAddr a) const;
  /// Whether the page holding `a` is scanned (true when not collecting).
  bool PageScanned(HeapAddr a) const;

  /// Invoked for every object move (from, to, total_words): remembered-set
  /// and tracker rekeying. Set by core::StableHeap.
  std::function<void(HeapAddr, HeapAddr, uint64_t)> on_object_moved;

  /// Invoked during the flip, after internal roots are translated: lets the
  /// core treat external state (the volatile area, §5.4) as part of the
  /// root set. The RootTranslator copies from-space targets.
  std::function<Status(const std::function<StatusOr<HeapAddr>(HeapAddr)>&)>
      extra_roots;

  /// Invoked when the collection completes, just before from-space is
  /// freed (husk fixup: forwarding words into from-space must be repaired
  /// or retired while the space is still readable).
  std::function<Status()> before_complete;

  /// Invoked at the start of a flip, before any state changes (method-2
  /// promotion materializes pending objects while they are still plain
  /// current-space/volatile data).
  std::function<Status()> before_flip;

 private:
  StatusOr<HeapAddr> CopyObject(HeapAddr from_base);
  /// Detlefs mode: pages dirtied by the current step, synchronously
  /// written at the end of the step ("each pause requires multiple
  /// synchronous writes to disk; furthermore, these writes are random").
  std::vector<PageId> detlefs_dirty_;
  void DetlefsMark(HeapAddr addr, uint64_t nbytes);
  Status DetlefsFlushStep();
  /// Scan one to-space page. `abandon_tail` (the trap path) bumps the copy
  /// pointer past the page first, wasting the tail, so copies triggered by
  /// the scan cannot land on the page being unprotected; the background
  /// scan instead walks the frontier page Cheney-style, re-reading the copy
  /// pointer as it grows.
  Status ScanPage(uint64_t page_index, bool abandon_tail);
  /// Detlefs mode: synchronously write the pages covering [addr, addr+n).
  Status SyncWriteRange(HeapAddr addr, uint64_t nbytes);
  /// Translate one slot value if it points into from-space; returns the
  /// (possibly unchanged) value and whether it changed.
  StatusOr<uint64_t> TranslateValue(uint64_t v, bool* changed);
  Status TranslateRootsAtFlip();
  Status Complete();

  /// Lowest unscanned copy-region page index, or npages if none. Advances
  /// the monotone scan cursor (scan bits never clear within a collection,
  /// so the cursor makes a full collection's queries O(npages/64) total
  /// instead of O(npages) each).
  uint64_t NextUnscannedPage();
  uint64_t PageIndexOf(HeapAddr a) const;
  void UpdateLot(HeapAddr to_base, uint64_t total_words);
  void MarkAllocPagesScanned(HeapAddr base, uint64_t nbytes);

  const Space* CurrentSpace() const;
  const Space* FromSpace() const;

  // Hardware barrier mirror (ctx_.mapping; all no-ops when null). The
  // software scanned_ bitmap stays the authority for barrier semantics;
  // the mirror shadows it in the MMU so unscanned-page accesses take a
  // real SIGSEGV. Page indices here are *space-local*; the helpers
  // translate to global PageIds against the current space's base.
  /// PROT_NONE the whole current space's mirror (flip: nothing scanned).
  void HwProtectCurrentSpace();
  /// Lift protection for [first, first+count) space-local pages (scanned).
  void HwUnprotectPages(uint64_t first_idx, uint64_t count);
  /// Reconcile the mirror with the scanned_ bitmap (recovery install).
  void HwSyncToBitmap();

  /// Asserts (never acquires) exclusive handshake ownership; may be null.
  const MutatorGate* gate_ = nullptr;

  GcContext ctx_;
  Options opts_;
  SemiSpaceState sem_;
  bool alloc_isolation_ = false;  // frontier currently in an isolated page
  HeapAddr root_object_ = kNullAddr;
  Bitmap scanned_;             // per page of the current space
  std::vector<HeapAddr> lot_;  // object covering each page's first word
  /// Read-barrier fast path: direct-mapped cache of pages recently found
  /// scanned (indexed by page_idx & 3). Scan bits are monotonic within a
  /// collection, so a cached positive stays valid until the next flip (or
  /// recovery install) invalidates the cache.
  std::array<uint64_t, 4> rb_cache_;
  /// Monotone scan cursor: every page below it is scanned. Reset at flip
  /// and recovery install.
  uint64_t scan_cursor_ = 0;
  /// Adaptive pacing: sub-page remainder of granted scan budget.
  uint64_t pacing_carry_bytes_ = 0;
  std::unique_ptr<ScanExecutor> executor_;
  GcStats stats_;

  friend class ScanExecutor;
};

}  // namespace sheap

#endif  // SHEAP_GC_ATOMIC_GC_H_
