// Shared garbage-collection infrastructure: the collector context (handles
// to every subsystem a collector coordinates with), semispace state, the
// Last Object Table (§3.2.1), and collection statistics.

#ifndef SHEAP_GC_GC_H_
#define SHEAP_GC_GC_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "heap/address.h"
#include "heap/handle_table.h"
#include "heap/heap_memory.h"
#include "heap/space_manager.h"
#include "heap/type_registry.h"
#include "recovery/utt.h"
#include "txn/lock_manager.h"
#include "txn/txn_manager.h"
#include "util/bitmap.h"
#include "util/sim_clock.h"
#include "wal/log_writer.h"

namespace sheap {

class HeapMapping;

/// Everything a collector touches. An atomic collector is defined by its
/// coordination with the recovery system (log) and the transaction system
/// (undo roots, locks); hence the wide context.
struct GcContext {
  HeapMemory* mem = nullptr;
  BufferPool* pool = nullptr;
  LogWriter* log = nullptr;
  SpaceManager* spaces = nullptr;
  TypeRegistry* types = nullptr;
  HandleTable* handles = nullptr;
  TxnManager* txns = nullptr;
  LockManager* locks = nullptr;
  SimClock* clock = nullptr;
  UndoTranslationTable* utt = nullptr;
  /// Hardware VM mirror (Env::mapping()); non-null only on a real backend
  /// with the mprotect barrier enabled. The collector then protects
  /// unscanned to-space pages in the MMU at a flip and the read barrier
  /// probes the mirror — a protected-page access takes a real SIGSEGV.
  HeapMapping* mapping = nullptr;
};

/// Read-barrier implementation (paper §3.2.1, §3.8).
enum class GcBarrierMode : uint8_t {
  /// Ellis-Li-Appel: unscanned to-space pages are protected; first access
  /// traps and scans the whole page. At most one trap per page.
  kPageProtection = 0,
  /// Baker: a software check on every heap reference; from-space values are
  /// translated (and their objects copied) one slot at a time.
  kPerAccess = 1,
};

/// How collector steps are made crash-safe (the atomicity axis).
enum class GcDurability : uint8_t {
  /// This paper: copy/scan steps follow the write-ahead log protocol; no
  /// synchronous writes anywhere.
  kWriteAheadLog = 0,
  /// Detlefs [15] comparator: each step performs synchronous random page
  /// writes instead of logging. Pause-shape comparison only (experiment
  /// E7); crash recovery is not wired up for this mode.
  kSynchronousWrites = 1,
};

/// Semispace pointers (Baker's to-space layout, Figure 3.3): the collector
/// copies at the low end (copy_ptr grows up); mutators allocate at the high
/// end (alloc_ptr grows down). Mutator-allocated pages never need scanning.
struct SemiSpaceState {
  SpaceId current = kInvalidSpaceId;  // to-space during a collection
  SpaceId from = kInvalidSpaceId;     // non-invalid iff collecting
  HeapAddr copy_ptr = kNullAddr;      // next free word for copies
  HeapAddr alloc_ptr = kNullAddr;     // allocation boundary (exclusive)

  bool collecting() const { return from != kInvalidSpaceId; }
  uint64_t free_bytes() const {
    return alloc_ptr > copy_ptr ? alloc_ptr - copy_ptr : 0;
  }
};

/// Per-collection and cumulative collector statistics. Pauses are in
/// simulated nanoseconds (see util/sim_clock.h).
struct GcStats {
  uint64_t collections_started = 0;
  uint64_t collections_completed = 0;
  uint64_t objects_copied = 0;
  uint64_t words_copied = 0;
  uint64_t pages_scanned = 0;
  uint64_t read_barrier_traps = 0;  // mutator-access-triggered page scans
  uint64_t read_barrier_fast_hits = 0;    // direct-mapped cache hits
  uint64_t read_barrier_fast_misses = 0;  // cache misses (bitmap consulted)
  uint64_t hw_barrier_traps = 0;     // real SIGSEGV traps (mprotect mirror)
  uint64_t hw_pages_protected = 0;   // mirror pages PROT_NONE'd at flips
  uint64_t scan_cursor_steps = 0;   // bitmap words examined finding work
  uint64_t waste_words = 0;         // page tails abandoned before scanning
  uint64_t sync_page_writes = 0;    // Detlefs comparator only

  // Parallel scan executor (timing/steal fields are schedule-dependent and
  // excluded from byte-determinism comparisons; the rest are deterministic).
  uint64_t scan_workers = 0;        // configured worker count
  uint64_t scan_rounds = 0;         // executor rounds run
  uint64_t scan_page_steals = 0;    // pages claimed off their home worker
  uint64_t copy_batch_records = 0;  // kGcCopyBatch records emitted
  uint64_t copy_batch_objects = 0;  // objects coalesced into them
  uint64_t scan_run_records = 0;    // kGcScan clean-run records emitted
  uint64_t scan_run_pages = 0;      // pages covered by those runs
  uint64_t scan_phase_ns = 0;       // executor scan-walk time (busiest lane)
  uint64_t pacing_budget_pages = 0; // pages granted by adaptive pacing
  uint64_t max_pause_ns = 0;
  uint64_t total_pause_ns = 0;
  uint64_t pause_count = 0;
  std::vector<uint64_t> pause_samples_ns;  // every pause, for histograms

  void RecordPause(uint64_t ns) {
    if (ns > max_pause_ns) max_pause_ns = ns;
    total_pause_ns += ns;
    ++pause_count;
    pause_samples_ns.push_back(ns);
  }
  double MeanPauseNs() const {
    return pause_count == 0
               ? 0.0
               : static_cast<double>(total_pause_ns) / pause_count;
  }
};

}  // namespace sheap

#endif  // SHEAP_GC_GC_H_
