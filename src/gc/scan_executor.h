// ScanExecutor: parallel scan engine for the atomic collector's background
// scan (DESIGN.md §5f).
//
// A round gathers up to `budget` unscanned fully-copied to-space pages
// (strictly below the copy frontier), pins them, and hands them to N scan
// workers that claim tasks off a shared atomic index — dynamic claiming, so
// a worker that finishes early steals pages that would statically belong to
// a peer. Workers are read-only: each walks its page image and emits the
// page's translation *candidates* (pointer slots whose value lies in
// from-space), in ascending slot order.
//
// Everything byte-visible then happens on the coordinator, in canonical
// ascending page/slot order regardless of which worker produced what:
//   * candidates are resolved against the from-space (forwarded objects
//     reuse their target; fresh objects get contiguous to-addresses at the
//     copy frontier — the deterministic equivalent of a per-worker LAB
//     merge),
//   * one kGcCopyBatch record carries the round's coalesced copies, and one
//     kGcScan record per page carries its translations (runs of adjacent
//     translation-free pages collapse to a single kGcScan clean-run record),
//   * heap writes follow each record under its LSN, per the WAL protocol.
// Log bytes, space layout, and recovery state are therefore byte-identical
// for every thread count; only simulated time differs (the scan phase is
// charged as the longest worker lane: ceil(pages / workers) page scans).
//
// Thread-safety contract (lock-free by construction, PR-4 discipline):
// workers touch no mutex and no shared mutable state — they read pinned
// PageImage frames, immutable snapshots (from-space range, copy frontier),
// and the TypeRegistry (append-only, quiescent during a collection), and
// write only their disjoint per-task candidate vectors. The coordinator
// owns the log, buffer pool, heap memory, and clock exclusively; adding a
// mutex anywhere here would hide a protocol bug. With true concurrent
// mutators (DESIGN.md §5i), rounds only ever run while the caller holds
// the MutatorGate exclusively (asserted in AtomicGc::Step), so mutator
// threads are parked at action boundaries for the duration of a round —
// the coordinator-exclusive ownership above still holds.

#ifndef SHEAP_GC_SCAN_EXECUTOR_H_
#define SHEAP_GC_SCAN_EXECUTOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "heap/address.h"

namespace sheap {

class AtomicGc;
struct PageImage;

/// Drives one round of parallel page scanning for AtomicGc (WAL durability
/// only; the Detlefs comparator and the read-barrier trap path keep the
/// serial ScanPage).
class ScanExecutor {
 public:
  ScanExecutor(AtomicGc* gc, uint32_t threads);

  /// Run one round over at most `budget` unscanned fully-copied pages.
  /// *pages_done is the number of pages consumed (0 = no full-page work is
  /// available; the caller falls back to the frontier page / completion).
  Status RunRound(uint64_t budget, uint64_t* pages_done);

  uint32_t threads() const { return threads_; }

 private:
  /// A slot whose value needs translation: `word` is the slot's word index
  /// within the page, `value` the from-space pointer it currently holds.
  struct Candidate {
    uint32_t word;
    HeapAddr value;
  };

  /// One claimed page: inputs are immutable during the worker phase; `out`
  /// is written only by the claiming worker.
  struct PageTask {
    uint64_t index = 0;             // page index within the current space
    HeapAddr page_base = kNullAddr;
    HeapAddr anchor = kNullAddr;    // LOT anchor (never null for a task)
    uint64_t anchor_header = 0;     // header word at `anchor`, pre-read
    const PageImage* frame = nullptr;  // pinned by the coordinator
    std::vector<Candidate> out;
    /// Resolved translations (coordinator-only, filled after the workers
    /// finish): slot word-in-page -> to-space value.
    std::vector<std::pair<uint32_t, uint64_t>> updates;
  };

  /// Pure page walk: reads only the task's inputs and the type registry.
  void ScanTask(PageTask* task, HeapAddr from_base, HeapAddr from_end,
                HeapAddr frontier) const;

  AtomicGc* gc_;
  uint32_t threads_;
};

}  // namespace sheap

#endif  // SHEAP_GC_SCAN_EXECUTOR_H_
