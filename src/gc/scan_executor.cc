#include "gc/scan_executor.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <unordered_map>

#include "common/check.h"
#include "fault/fault_injector.h"
#include "gc/atomic_gc.h"
#include "heap/object.h"
#include "storage/buffer_pool.h"

namespace sheap {

ScanExecutor::ScanExecutor(AtomicGc* gc, uint32_t threads)
    : gc_(gc), threads_(std::max<uint32_t>(1, threads)) {}

void ScanExecutor::ScanTask(PageTask* task, HeapAddr from_base,
                            HeapAddr from_end, HeapAddr frontier) const {
  const HeapAddr page_base = task->page_base;
  const HeapAddr page_end = page_base + kPageSizeBytes;
  // Same walk as the serial ScanPage, against the pinned frame: start at
  // the LOT anchor (whose header was pre-read — it may lie on an earlier
  // page) and parse headers until the page ends or a dead tail appears.
  HeapAddr obj = task->anchor;
  uint64_t w = task->anchor_header;
  while (obj < page_end && obj < frontier) {
    if (!IsHeaderWord(w)) break;  // abandoned tail of an earlier trap bump
    const ObjectHeader hdr = DecodeHeader(w);
    for (uint64_t i = 0; i < hdr.nslots; ++i) {
      const HeapAddr slot_addr = SlotAddr(obj, i);
      if (slot_addr < page_base) continue;
      if (slot_addr >= page_end) break;
      if (!gc_->ctx_.types->IsPointerSlot(hdr.class_id, i)) continue;
      const uint64_t v = task->frame->ReadWord(WordInPage(slot_addr));
      if (v != kNullAddr && v >= from_base && v < from_end) {
        task->out.push_back(Candidate{WordInPage(slot_addr), v});
      }
    }
    obj += hdr.TotalWords() * kWordSizeBytes;
    if (obj >= page_end || obj >= frontier) break;
    w = task->frame->ReadWord(WordInPage(obj));
  }
}

Status ScanExecutor::RunRound(uint64_t budget, uint64_t* pages_done) {
  *pages_done = 0;
  if (budget == 0 || !gc_->sem_.collecting()) return Status::OK();
  const Space* cur = gc_->CurrentSpace();
  const HeapAddr frontier = gc_->sem_.copy_ptr;
  const uint64_t full_limit = (frontier - cur->base()) / kPageSizeBytes;

  // Gather up to `budget` unscanned fully-copied pages. Monotone cursor +
  // word-skipping probe: scan bits only ever get set during a collection,
  // so every page below the first unset bit stays scanned and the cursor
  // never moves backwards.
  std::vector<uint64_t> pages;
  uint64_t probe = gc_->scan_cursor_;
  bool first_probe = true;
  while (pages.size() < budget) {
    const uint64_t idx = gc_->scanned_.FindFirstUnset(probe);
    gc_->stats_.scan_cursor_steps += (idx >> 6) - (probe >> 6) + 1;
    if (first_probe) {
      gc_->scan_cursor_ = idx;
      first_probe = false;
    }
    if (idx >= full_limit) break;
    pages.push_back(idx);
    probe = idx + 1;
  }
  if (pages.empty()) return Status::OK();

  // Crash window: pages claimed for the round, nothing logged yet.
  SHEAP_FAULT_POINT(gc_->ctx_.log->faults(), "gc.scan.worker_claim");

  const Space* from_sp = gc_->FromSpace();
  const HeapAddr from_base = from_sp->base();
  const HeapAddr from_end = from_sp->end();

  // Build tasks for pages with copied data and pre-pin their frames, in
  // ascending page order so pool fetches log kPageFetch deterministically.
  // Workers must never touch the pool (a racing same-page miss is
  // unsupported) — they only read the frames pinned here. Pages without a
  // LOT anchor follow the serial rule: marked scanned below, no record.
  std::vector<PageTask> tasks;
  tasks.reserve(pages.size());
  std::vector<PageId> pinned;
  pinned.reserve(pages.size());
  auto unpin_all = [&]() {
    for (PageId pid : pinned) gc_->ctx_.pool->Unpin(pid);
    pinned.clear();
  };
  for (uint64_t idx : pages) {
    const HeapAddr anchor = gc_->lot_[idx];
    if (anchor == kNullAddr) continue;
    PageTask t;
    t.index = idx;
    t.page_base = cur->base() + idx * kPageSizeBytes;
    t.anchor = anchor;
    auto header = gc_->ctx_.mem->ReadWord(anchor);
    if (!header.ok()) {
      unpin_all();
      return header.status();
    }
    t.anchor_header = *header;
    auto frame = gc_->ctx_.pool->Pin(PageOf(t.page_base));
    if (!frame.ok()) {
      unpin_all();
      return frame.status();
    }
    pinned.push_back(PageOf(t.page_base));
    t.frame = *frame;
    tasks.push_back(std::move(t));
  }

  // Worker phase: dynamic claiming off a shared index. A worker that runs
  // ahead takes tasks that statically belong to a peer (work-stealing);
  // the claim order cannot matter because workers only fill their own
  // task's candidate vector.
  const uint32_t nworkers = static_cast<uint32_t>(std::min<uint64_t>(
      threads_, std::max<size_t>(tasks.size(), 1)));
  if (nworkers <= 1) {
    for (PageTask& t : tasks) ScanTask(&t, from_base, from_end, frontier);
  } else {
    std::atomic<size_t> next{0};
    std::vector<uint64_t> steals(nworkers, 0);
    std::vector<uint64_t> lane_ns(nworkers, 0);
    std::vector<std::thread> workers;
    workers.reserve(nworkers);
    for (uint32_t w = 0; w < nworkers; ++w) {
      workers.emplace_back([&, w]() {
        // Workers make no clock charges today; the scope is defensive so a
        // future charge inside the walk lands in a lane, not the shared
        // clock (which is not thread-safe to Advance concurrently).
        SimClock::ThreadChargeScope charge(gc_->ctx_.clock, &lane_ns[w]);
        while (true) {
          const size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= tasks.size()) break;
          if (i % nworkers != w) ++steals[w];
          ScanTask(&tasks[i], from_base, from_end, frontier);
        }
      });
    }
    for (std::thread& t : workers) t.join();
    for (uint64_t s : steals) gc_->stats_.scan_page_steals += s;
  }
  unpin_all();

  // Scan-phase cost on parallel hardware: the busiest lane. Dynamic
  // claiming balances uniform page walks to ceil(n / workers) per lane;
  // at one worker this equals the serial per-page charge exactly.
  if (!tasks.empty()) {
    const uint64_t lane_ns = ((tasks.size() + nworkers - 1) / nworkers) *
                             kWordsPerPage *
                             gc_->ctx_.clock->model().scan_word_ns;
    gc_->ctx_.clock->Advance(lane_ns);
    gc_->stats_.scan_phase_ns += lane_ns;
  }

  // Resolve pass (read-only): candidates in canonical ascending page/slot
  // order, assigning contiguous to-addresses at the copy frontier — the
  // deterministic merge of the workers' would-be allocation buffers. On
  // out-of-space nothing has been logged or written: the round fails clean.
  struct PlannedCopy {
    HeapAddr from;
    HeapAddr to;
    uint64_t nwords;
  };
  std::vector<PlannedCopy> copies;
  std::vector<uint8_t> buffer;
  std::unordered_map<HeapAddr, HeapAddr> resolved;
  const HeapAddr run_base = gc_->sem_.copy_ptr;
  const HeapAddr alloc_floor =
      gc_->sem_.alloc_ptr - (gc_->sem_.alloc_ptr % kPageSizeBytes);
  uint64_t run_words = 0;
  for (PageTask& t : tasks) {
    for (const Candidate& c : t.out) {
      HeapAddr nv;
      auto it = resolved.find(c.value);
      if (it != resolved.end()) {
        nv = it->second;
      } else {
        SHEAP_ASSIGN_OR_RETURN(uint64_t w, gc_->ctx_.mem->ReadWord(c.value));
        if (IsForwardWord(w)) {
          nv = ForwardTarget(w);
        } else if (!IsHeaderWord(w)) {
          return Status::Corruption("copy source is not an object");
        } else {
          const uint64_t total = DecodeHeader(w).TotalWords();
          const uint64_t nbytes = total * kWordSizeBytes;
          if (run_base + run_words * kWordSizeBytes + nbytes > alloc_floor) {
            return Status::OutOfSpace("to-space exhausted during copy");
          }
          nv = run_base + run_words * kWordSizeBytes;
          const size_t off = buffer.size();
          buffer.resize(off + nbytes);
          SHEAP_RETURN_IF_ERROR(
              gc_->ctx_.mem->ReadBytes(c.value, nbytes, buffer.data() + off));
          copies.push_back(PlannedCopy{c.value, nv, total});
          run_words += total;
        }
        resolved.emplace(c.value, nv);
      }
      t.updates.emplace_back(c.word, nv);
    }
  }

  // Apply pass: log first, write under the record's LSN (§3.4). The batch
  // record precedes every scan record that references its to-addresses, so
  // any log prefix a crash retains satisfies the serial protocol's
  // copy-before-scan ordering.
  if (!copies.empty()) {
    if (gc_->opts_.batch_records) {
      LogRecord rec;
      rec.type = RecordType::kGcCopyBatch;
      rec.addr2 = run_base;
      rec.count = run_words;
      rec.contents = buffer;
      rec.utr_entries.reserve(copies.size());
      for (const PlannedCopy& c : copies) {
        rec.utr_entries.push_back(UtrEntry{c.from, c.to, c.nwords});
      }
      const Lsn lsn = gc_->ctx_.log->Append(&rec);
      SHEAP_RETURN_IF_ERROR(gc_->ctx_.mem->WriteBytesLogged(
          run_base, rec.contents.data(), rec.contents.size(), lsn));
      for (const PlannedCopy& c : copies) {
        SHEAP_RETURN_IF_ERROR(gc_->ctx_.mem->WriteWordLogged(
            c.from, MakeForwardWord(c.to), lsn));
      }
      ++gc_->stats_.copy_batch_records;
      gc_->stats_.copy_batch_objects += copies.size();
    } else {
      // Per-object encoding, kept selectable so E14 measures the batching
      // win against the same executor rather than a different scan order.
      size_t off = 0;
      for (const PlannedCopy& c : copies) {
        const uint64_t nbytes = c.nwords * kWordSizeBytes;
        LogRecord rec;
        rec.type = RecordType::kGcCopy;
        rec.addr = c.from;
        rec.addr2 = c.to;
        rec.count = c.nwords;
        rec.contents.assign(buffer.begin() + off,
                            buffer.begin() + off + nbytes);
        off += nbytes;
        const Lsn lsn = gc_->ctx_.log->Append(&rec);
        SHEAP_RETURN_IF_ERROR(gc_->ctx_.mem->WriteBytesLogged(
            c.to, rec.contents.data(), rec.contents.size(), lsn));
        SHEAP_RETURN_IF_ERROR(gc_->ctx_.mem->WriteWordLogged(
            c.from, MakeForwardWord(c.to), lsn));
      }
    }
    gc_->sem_.copy_ptr = run_base + run_words * kWordSizeBytes;
    for (const PlannedCopy& c : copies) {
      gc_->UpdateLot(c.to, c.nwords);
      ++gc_->stats_.objects_copied;
      gc_->stats_.words_copied += c.nwords;
      gc_->ctx_.clock->ChargeCopyWords(c.nwords);
      gc_->ctx_.locks->Rekey(c.from, c.to);
      if (gc_->on_object_moved) gc_->on_object_moved(c.from, c.to, c.nwords);
    }
  }

  // Per-page scan records in ascending page order. Pages with translations
  // get a kGcScan each; maximal runs of adjacent translation-free pages
  // collapse into one clean-run record (aux = kScanRun).
  size_t ti = 0;
  size_t pi = 0;
  while (pi < pages.size()) {
    const uint64_t idx = pages[pi];
    if (ti >= tasks.size() || tasks[ti].index != idx) {
      ++pi;  // empty page: no record, marked scanned below
      continue;
    }
    PageTask& t = tasks[ti];
    if (!t.updates.empty()) {
      LogRecord rec;
      rec.type = RecordType::kGcScan;
      rec.aux = 0;
      rec.page = t.page_base / kPageSizeBytes;
      rec.slot_updates = t.updates;
      const Lsn lsn = gc_->ctx_.log->Append(&rec);
      for (const auto& [word, value] : t.updates) {
        SHEAP_RETURN_IF_ERROR(gc_->ctx_.mem->WriteWordLogged(
            t.page_base + static_cast<HeapAddr>(word) * kWordSizeBytes,
            value, lsn));
      }
      ++ti;
      ++pi;
      continue;
    }
    if (!gc_->opts_.batch_records) {
      // Legacy shape: one (translation-free) kGcScan per clean page.
      LogRecord rec;
      rec.type = RecordType::kGcScan;
      rec.aux = 0;
      rec.page = t.page_base / kPageSizeBytes;
      gc_->ctx_.log->Append(&rec);
      ++ti;
      ++pi;
      continue;
    }
    uint64_t len = 1;
    size_t run_ti = ti + 1;
    size_t run_pi = pi + 1;
    while (run_ti < tasks.size() && run_pi < pages.size() &&
           pages[run_pi] == idx + len &&
           tasks[run_ti].index == pages[run_pi] &&
           tasks[run_ti].updates.empty()) {
      ++len;
      ++run_ti;
      ++run_pi;
    }
    LogRecord rec;
    rec.type = RecordType::kGcScan;
    rec.aux = LogRecord::kScanRun;
    rec.page = t.page_base / kPageSizeBytes;
    rec.count = len;
    gc_->ctx_.log->Append(&rec);
    ++gc_->stats_.scan_run_records;
    gc_->stats_.scan_run_pages += len;
    ti = run_ti;
    pi = run_pi;
  }

  // Crash window: the whole round is spooled; any retained prefix of it
  // replays to a state the serial protocol could also have reached.
  SHEAP_FAULT_POINT(gc_->ctx_.log->faults(), "gc.batch.merged");

  for (uint64_t idx : pages) gc_->scanned_.Set(idx);
  gc_->stats_.pages_scanned += tasks.size();
  ++gc_->stats_.scan_rounds;
  *pages_done = pages.size();
  return Status::OK();
}

}  // namespace sheap
