// CopyingGc: the "normal" (non-atomic) stop-the-world copying collector used
// for the volatile area (paper §5.3): storage management there is cheap —
// no logging, no coordination with recovery — because volatile objects do
// not survive crashes.
//
// Cross-structure fixups are delegated to hooks so the collector stays
// ignorant of the stable half:
//  * `extra_roots` lets core enumerate/translate roots beyond the handle
//    table: stable-area slots holding uncommitted volatile pointers (the
//    remembered set — their rewrites are logged by the callback, Figure
//    "S4vscan"), in-memory undo values, and tracker LS sets;
//  * `on_object_moved` rekeys address-keyed side tables.

#ifndef SHEAP_GC_COPYING_GC_H_
#define SHEAP_GC_COPYING_GC_H_

#include <functional>

#include "common/status.h"
#include "common/statusor.h"
#include "gc/gc.h"
#include "heap/object.h"
#include "txn/txn.h"
#include "util/sim_clock.h"

namespace sheap {

/// Translates a root value: copies the target out of from-space when needed
/// and returns the current address.
using RootTranslator = std::function<StatusOr<HeapAddr>(HeapAddr)>;

/// Stop-the-world copying collector for the volatile area.
class CopyingGc {
 public:
  struct Options {
    uint64_t space_pages = 256;
  };

  CopyingGc(const GcContext& ctx, const Options& opts);

  /// Allocate the initial volatile space.
  Status Format();

  /// Unlogged bump allocation (high end of the current space).
  StatusOr<HeapAddr> AllocateObject(Txn* txn, ClassId cls, uint64_t nslots);

  /// Run one full collection as a single pause.
  Status Collect();

  /// Discard everything and start over with a fresh space (crash recovery:
  /// the volatile area does not survive, §2.1).
  Status ResetAfterCrash();

  /// Visit every object (live or garbage) in the current space:
  /// f(base, header). Used by the stable collector's flip to treat the
  /// volatile area as part of its root set (§5.4).
  Status ForEachObject(
      const std::function<Status(HeapAddr, const ObjectHeader&)>& f);

  /// Follow a forwarding word if present (valid only mid-collection).
  StatusOr<HeapAddr> ResolveForward(HeapAddr base);

  /// Fix every promotion husk at the end of a stable collection, while the
  /// stable from-space is still readable: `fix(target)` returns the
  /// target's current address, or kNullAddr if the target was garbage (not
  /// copied). Live husks get their forwarding word rewritten; dead husks
  /// are turned into plain unreachable objects of the same size, so the
  /// sequential walks stay parseable and the next volatile collection
  /// reclaims them.
  Status FixHusks(const std::function<StatusOr<HeapAddr>(HeapAddr)>& fix);

  bool Contains(HeapAddr a) const;
  const SemiSpaceState& sem() const { return sem_; }
  uint64_t free_bytes() const { return sem_.free_bytes(); }
  GcStats& stats() { return stats_; }

  std::function<void(HeapAddr, HeapAddr, uint64_t)> on_object_moved;
  std::function<Status(const RootTranslator&)> extra_roots;

 private:
  StatusOr<HeapAddr> CopyObject(HeapAddr from_base);
  StatusOr<uint64_t> TranslateValue(uint64_t v);
  Status ScanCopied();

  const Space* CurrentSpace() const;
  bool InFromSpace(HeapAddr a) const;

  GcContext ctx_;
  Options opts_;
  SemiSpaceState sem_;
  GcStats stats_;
};

}  // namespace sheap

#endif  // SHEAP_GC_COPYING_GC_H_
