#include "gc/copying_gc.h"

#include <algorithm>

#include "common/check.h"

namespace sheap {

CopyingGc::CopyingGc(const GcContext& ctx, const Options& opts)
    : ctx_(ctx), opts_(opts) {
  SHEAP_CHECK(opts_.space_pages > 0);
}

const Space* CopyingGc::CurrentSpace() const {
  const Space* sp = ctx_.spaces->Find(sem_.current);
  SHEAP_CHECK(sp != nullptr);
  return sp;
}

bool CopyingGc::InFromSpace(HeapAddr a) const {
  if (!sem_.collecting() || a == kNullAddr) return false;
  const Space* sp = ctx_.spaces->Find(sem_.from);
  return sp != nullptr && sp->Contains(a);
}

bool CopyingGc::Contains(HeapAddr a) const {
  if (a == kNullAddr || sem_.current == kInvalidSpaceId) return false;
  if (CurrentSpace()->Contains(a)) return true;
  if (sem_.collecting()) {
    const Space* sp = ctx_.spaces->Find(sem_.from);
    if (sp != nullptr && sp->Contains(a)) return true;
  }
  return false;
}

Status CopyingGc::Format() {
  SHEAP_CHECK(sem_.current == kInvalidSpaceId);
  SHEAP_ASSIGN_OR_RETURN(
      SpaceId id, ctx_.spaces->Allocate(opts_.space_pages, Area::kVolatile));
  const Space* sp = ctx_.spaces->Find(id);
  sem_.current = id;
  sem_.from = kInvalidSpaceId;
  sem_.copy_ptr = sp->base();
  sem_.alloc_ptr = sp->end();
  return Status::OK();
}

StatusOr<HeapAddr> CopyingGc::AllocateObject(Txn* txn, ClassId cls,
                                             uint64_t nslots) {
  const uint64_t nbytes = (1 + nslots) * kWordSizeBytes;
  if (nbytes > sem_.alloc_ptr || sem_.alloc_ptr - nbytes < sem_.copy_ptr) {
    return Status::OutOfSpace("volatile area allocation would overrun");
  }
  const HeapAddr base = sem_.alloc_ptr - nbytes;
  SHEAP_RETURN_IF_ERROR(
      ctx_.mem->WriteWordUnlogged(base, EncodeHeader(cls, nslots)));
  sem_.alloc_ptr = base;
  if (txn != nullptr) {
    txn->allocs.push_back(TxnAlloc{base, /*stable_area=*/false});
  }
  return base;
}

StatusOr<HeapAddr> CopyingGc::ResolveForward(HeapAddr base) {
  SHEAP_ASSIGN_OR_RETURN(uint64_t w, ctx_.mem->ReadWord(base));
  if (IsForwardWord(w)) return ForwardTarget(w);
  return base;
}

StatusOr<HeapAddr> CopyingGc::CopyObject(HeapAddr from_base) {
  SHEAP_DCHECK(InFromSpace(from_base));
  SHEAP_ASSIGN_OR_RETURN(uint64_t w, ctx_.mem->ReadWord(from_base));
  if (IsForwardWord(w)) return ForwardTarget(w);
  if (!IsHeaderWord(w)) {
    return Status::Corruption("volatile copy source is not an object");
  }
  const ObjectHeader hdr = DecodeHeader(w);
  const uint64_t nbytes = hdr.TotalWords() * kWordSizeBytes;
  if (sem_.copy_ptr + nbytes > sem_.alloc_ptr) {
    return Status::OutOfSpace("volatile to-space exhausted");
  }
  const HeapAddr to_base = sem_.copy_ptr;
  std::vector<uint8_t> bytes(nbytes);
  SHEAP_RETURN_IF_ERROR(ctx_.mem->ReadBytes(from_base, nbytes, bytes.data()));
  SHEAP_RETURN_IF_ERROR(
      ctx_.mem->WriteBytesUnlogged(to_base, bytes.data(), nbytes));
  SHEAP_RETURN_IF_ERROR(
      ctx_.mem->WriteWordUnlogged(from_base, MakeForwardWord(to_base)));
  sem_.copy_ptr += nbytes;
  ++stats_.objects_copied;
  stats_.words_copied += hdr.TotalWords();
  ctx_.clock->ChargeCopyWords(hdr.TotalWords());
  ctx_.locks->Rekey(from_base, to_base);
  if (on_object_moved) on_object_moved(from_base, to_base, hdr.TotalWords());
  return to_base;
}

StatusOr<uint64_t> CopyingGc::TranslateValue(uint64_t v) {
  if (v == kNullAddr || !InFromSpace(v)) return v;
  return CopyObject(v);
}

Status CopyingGc::ScanCopied() {
  const Space* cur = CurrentSpace();
  HeapAddr scan = cur->base();
  while (scan < sem_.copy_ptr) {
    SHEAP_ASSIGN_OR_RETURN(ObjectHeader hdr, ctx_.mem->ReadHeader(scan));
    for (uint64_t i = 0; i < hdr.nslots; ++i) {
      if (!ctx_.types->IsPointerSlot(hdr.class_id, i)) continue;
      const HeapAddr slot_addr = SlotAddr(scan, i);
      SHEAP_ASSIGN_OR_RETURN(uint64_t v, ctx_.mem->ReadWord(slot_addr));
      SHEAP_ASSIGN_OR_RETURN(uint64_t nv, TranslateValue(v));
      if (nv != v) {
        SHEAP_RETURN_IF_ERROR(ctx_.mem->WriteWordUnlogged(slot_addr, nv));
      }
    }
    ctx_.clock->ChargeScanWords(hdr.TotalWords());
    scan += hdr.TotalWords() * kWordSizeBytes;
  }
  return Status::OK();
}

Status CopyingGc::Collect() {
  SHEAP_CHECK(!sem_.collecting());
  SimSpan span(ctx_.clock);
  ++stats_.collections_started;

  const Space* old = CurrentSpace();
  const uint64_t npages = std::max(opts_.space_pages, old->npages);
  SHEAP_ASSIGN_OR_RETURN(SpaceId to_id,
                         ctx_.spaces->Allocate(npages, Area::kVolatile));
  const Space* to = ctx_.spaces->Find(to_id);

  LogRecord rec;
  rec.type = RecordType::kVolatileFlip;
  rec.addr = sem_.current;
  rec.addr2 = to_id;
  ctx_.log->Append(&rec);

  sem_.from = sem_.current;
  sem_.current = to_id;
  sem_.copy_ptr = to->base();
  sem_.alloc_ptr = to->end();

  // Roots: handles, then caller-supplied roots (remembered set, in-memory
  // undo info, tracker sets).
  Status root_status = Status::OK();
  ctx_.handles->ForEachLive([&](HeapAddr* slot) {
    if (!root_status.ok() || !InFromSpace(*slot)) return;
    auto copied = CopyObject(*slot);
    if (!copied.ok()) {
      root_status = copied.status();
      return;
    }
    *slot = *copied;
  });
  SHEAP_RETURN_IF_ERROR(root_status);
  if (extra_roots) {
    SHEAP_RETURN_IF_ERROR(
        extra_roots([this](HeapAddr v) { return TranslateValue(v); }));
  }

  SHEAP_RETURN_IF_ERROR(ScanCopied());
  SHEAP_RETURN_IF_ERROR(ctx_.spaces->Free(sem_.from));
  sem_.from = kInvalidSpaceId;
  ++stats_.collections_completed;
  stats_.RecordPause(span.elapsed_ns());
  return Status::OK();
}

Status CopyingGc::ResetAfterCrash() {
  sem_ = SemiSpaceState();
  return Format();
}

Status CopyingGc::FixHusks(
    const std::function<StatusOr<HeapAddr>(HeapAddr)>& fix) {
  SHEAP_CHECK(!sem_.collecting());
  const Space* cur = CurrentSpace();
  auto walk = [&](HeapAddr start, HeapAddr limit) -> Status {
    for (HeapAddr a = start; a < limit;) {
      SHEAP_ASSIGN_OR_RETURN(uint64_t w, ctx_.mem->ReadWord(a));
      HeapAddr target = kNullAddr;
      uint64_t hw = w;
      while (IsForwardWord(hw)) {
        target = ForwardTarget(hw);
        SHEAP_ASSIGN_OR_RETURN(hw, ctx_.mem->ReadWord(target));
      }
      if (!IsHeaderWord(hw)) {
        return Status::Corruption("husk fixup hit a non-object word");
      }
      const ObjectHeader hdr = DecodeHeader(hw);
      if (IsForwardWord(w)) {
        SHEAP_ASSIGN_OR_RETURN(HeapAddr current, fix(target));
        if (current == kNullAddr) {
          // Target was garbage: nothing references this husk (the flip's
          // volatile scan rewrote every husk-valued slot). Give it a plain
          // header so walks still parse it; the next volatile collection
          // reclaims it.
          SHEAP_RETURN_IF_ERROR(ctx_.mem->WriteWordUnlogged(
              a, EncodeHeader(kClassDataArray, hdr.nslots)));
        } else if (current != ForwardTarget(w)) {
          SHEAP_RETURN_IF_ERROR(
              ctx_.mem->WriteWordUnlogged(a, MakeForwardWord(current)));
        }
      }
      a += hdr.TotalWords() * kWordSizeBytes;
    }
    return Status::OK();
  };
  SHEAP_RETURN_IF_ERROR(walk(cur->base(), sem_.copy_ptr));
  return walk(sem_.alloc_ptr, cur->end());
}

Status CopyingGc::ForEachObject(
    const std::function<Status(HeapAddr, const ObjectHeader&)>& f) {
  SHEAP_CHECK(!sem_.collecting());
  const Space* cur = CurrentSpace();
  // An object promoted to the stable area leaves a forwarding word in its
  // volatile copy (§5.2); such husks are skipped — the live copy is managed
  // by the stable collector. The forward target's header supplies the size
  // needed to continue the walk.
  auto walk = [&](HeapAddr start, HeapAddr limit) -> Status {
    for (HeapAddr a = start; a < limit;) {
      SHEAP_ASSIGN_OR_RETURN(uint64_t w, ctx_.mem->ReadWord(a));
      ObjectHeader hdr;
      const bool forwarded = IsForwardWord(w);
      // Follow the forwarding chain to a header: a husk's stable target may
      // itself have been forwarded by an in-progress stable collection.
      HeapAddr h = a;
      while (IsForwardWord(w)) {
        h = ForwardTarget(w);
        SHEAP_ASSIGN_OR_RETURN(w, ctx_.mem->ReadWord(h));
      }
      if (IsHeaderWord(w)) {
        hdr = DecodeHeader(w);
      } else {
        return Status::Corruption("volatile walk hit a non-object word");
      }
      if (!forwarded) {
        SHEAP_RETURN_IF_ERROR(f(a, hdr));
      }
      a += hdr.TotalWords() * kWordSizeBytes;
    }
    return Status::OK();
  };
  SHEAP_RETURN_IF_ERROR(walk(cur->base(), sem_.copy_ptr));
  return walk(sem_.alloc_ptr, cur->end());
}

}  // namespace sheap
