#include "gc/atomic_gc.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "core/mutator_gate.h"
#include "gc/scan_executor.h"

namespace sheap {

namespace {
HeapAddr RoundDownToPage(HeapAddr a) { return a - (a % kPageSizeBytes); }
HeapAddr RoundUpToPage(HeapAddr a) {
  return (a + kPageSizeBytes - 1) / kPageSizeBytes * kPageSizeBytes;
}
}  // namespace

AtomicGc::AtomicGc(const GcContext& ctx, const Options& opts)
    : ctx_(ctx), opts_(opts) {
  SHEAP_CHECK(opts_.space_pages > 0);
  rb_cache_.fill(UINT64_MAX);
  executor_ = std::make_unique<ScanExecutor>(this, opts_.threads);
  stats_.scan_workers = executor_->threads();
}

AtomicGc::~AtomicGc() = default;

const Space* AtomicGc::CurrentSpace() const {
  const Space* sp = ctx_.spaces->Find(sem_.current);
  SHEAP_CHECK(sp != nullptr);
  return sp;
}

const Space* AtomicGc::FromSpace() const {
  const Space* sp = ctx_.spaces->Find(sem_.from);
  SHEAP_CHECK(sp != nullptr);
  return sp;
}

bool AtomicGc::InFromSpace(HeapAddr a) const {
  if (!sem_.collecting() || a == kNullAddr) return false;
  return FromSpace()->Contains(a);
}

bool AtomicGc::InCurrentSpace(HeapAddr a) const {
  if (sem_.current == kInvalidSpaceId || a == kNullAddr) return false;
  return CurrentSpace()->Contains(a);
}

uint64_t AtomicGc::PageIndexOf(HeapAddr a) const {
  const Space* cur = CurrentSpace();
  SHEAP_DCHECK(a >= cur->base() && a <= cur->end());
  return (a - cur->base()) / kPageSizeBytes;
}

bool AtomicGc::PageScanned(HeapAddr a) const {
  if (!sem_.collecting()) return true;
  if (!InCurrentSpace(a)) return true;
  return scanned_.Get(PageIndexOf(a));
}

Status AtomicGc::Format() {
  SHEAP_CHECK(sem_.current == kInvalidSpaceId);
  SHEAP_ASSIGN_OR_RETURN(SpaceId id,
                         ctx_.spaces->Allocate(opts_.space_pages,
                                               Area::kStable));
  const Space* sp = ctx_.spaces->Find(id);
  sem_.current = id;
  sem_.from = kInvalidSpaceId;
  sem_.copy_ptr = sp->base();
  sem_.alloc_ptr = sp->end();
  scanned_.Resize(sp->npages);
  scanned_.SetAll();  // no collection active: everything accessible
  HwUnprotectPages(0, sp->npages);
  lot_.assign(sp->npages, kNullAddr);

  // A degenerate flip record (no from-space) tells recovery analysis which
  // space is current and where its pointers start.
  LogRecord flip;
  flip.type = RecordType::kGcFlip;
  flip.aux = static_cast<uint64_t>(Area::kStable);
  flip.addr = kInvalidSpaceId;
  flip.addr2 = id;
  ctx_.log->Append(&flip);

  SHEAP_ASSIGN_OR_RETURN(
      root_object_,
      AllocateObject(nullptr, kClassPtrArray, opts_.root_slots));
  LogRecord rec;
  rec.type = RecordType::kRootObject;
  rec.addr = root_object_;
  ctx_.log->Append(&rec);
  return Status::OK();
}

StatusOr<HeapAddr> AtomicGc::AllocateObject(Txn* txn, ClassId cls,
                                            uint64_t nslots) {
  if (alloc_isolation_) {
    // Leave the page-isolated region of pending promotions.
    sem_.alloc_ptr = RoundDownToPage(sem_.alloc_ptr);
    alloc_isolation_ = false;
  }
  const uint64_t nwords = 1 + nslots;
  const uint64_t nbytes = nwords * kWordSizeBytes;
  if (nbytes > sem_.alloc_ptr ||
      RoundDownToPage(sem_.alloc_ptr - nbytes) <
          RoundUpToPage(sem_.copy_ptr)) {
    return Status::OutOfSpace("stable area allocation would overrun");
  }
  const HeapAddr base = sem_.alloc_ptr - nbytes;

  LogRecord rec;
  rec.type = RecordType::kAlloc;
  rec.addr = base;
  rec.aux = cls;
  rec.count = nslots;
  Lsn lsn;
  if (txn != nullptr) {
    lsn = ctx_.txns->AppendChained(txn, &rec);
    txn->allocs.push_back(TxnAlloc{base, /*stable_area=*/true});
  } else {
    rec.txn_id = 0;  // system allocation (heap format)
    lsn = ctx_.log->Append(&rec);
  }
  SHEAP_RETURN_IF_ERROR(
      ctx_.mem->WriteWordLogged(base, EncodeHeader(cls, nslots), lsn));
  sem_.alloc_ptr = base;
  // Mutator-allocated pages never contain from-space pointers: born scanned
  // (Baker layout, Figure 3.3).
  MarkAllocPagesScanned(base, nbytes);
  return base;
}

void AtomicGc::MarkAllocPagesScanned(HeapAddr base, uint64_t nbytes) {
  uint64_t first = PageIndexOf(base);
  uint64_t last = PageIndexOf(base + nbytes - 1);
  for (uint64_t idx = first; idx <= last; ++idx) scanned_.Set(idx);
  HwUnprotectPages(first, last - first + 1);
}

Status AtomicGc::EnsureAccess(HeapAddr a) {
  if (!sem_.collecting() || a == kNullAddr) return Status::OK();
  if (opts_.barrier == GcBarrierMode::kPerAccess) {
    // Baker barrier checks values, not pages (see EnsureSlotAccess).
    return Status::OK();
  }
  if (InCurrentSpace(a)) {
    const uint64_t idx = PageIndexOf(a);
    if (rb_cache_[idx & 3] == idx) {
      // Fast path: this page was already found scanned during this
      // collection; skip the bitmap lookup. Four direct-mapped entries
      // cover the common mutator patterns (runs of accesses against one
      // page, and pointer-chasing that alternates between a few pages).
      ++stats_.read_barrier_fast_hits;
      return Status::OK();
    }
    ++stats_.read_barrier_fast_misses;
    if (!scanned_.Get(idx)) {
      // Ellis read-barrier trap: scan the faulted page (§3.2.1). With a
      // hardware mirror the probe takes a real SIGSEGV first — the MMU
      // raises the trap, the handler lifts the page's protection — and
      // the software path then performs the scan the trap demands.
      if (ctx_.mapping != nullptr &&
          ctx_.mapping->Touch(CurrentSpace()->base() / kPageSizeBytes +
                              idx)) {
        ++stats_.hw_barrier_traps;
      }
      ++stats_.read_barrier_traps;
      ctx_.clock->ChargeTrap();
      SimSpan span(ctx_.clock);
      SHEAP_RETURN_IF_ERROR(ScanPage(idx, /*abandon_tail=*/true));
      stats_.RecordPause(span.elapsed_ns());
    }
    rb_cache_[idx & 3] = idx;
    return Status::OK();
  }
  if (InFromSpace(a)) {
    // Invariant I5: the mutator never sees a from-space address.
    return Status::Internal("read-barrier violation: from-space access");
  }
  return Status::OK();
}

Status AtomicGc::EnsureSlotAccess(HeapAddr slot_addr, bool is_pointer) {
  if (!sem_.collecting()) return Status::OK();
  if (opts_.barrier == GcBarrierMode::kPageProtection) {
    return EnsureAccess(slot_addr);
  }
  // Baker's read barrier (§3.8): a check on every heap reference; a
  // from-space value is translated in place, copying its target.
  ctx_.clock->ChargeBakerCheck();
  if (!is_pointer) return Status::OK();
  SHEAP_ASSIGN_OR_RETURN(uint64_t v, ctx_.mem->ReadWord(slot_addr));
  if (v == kNullAddr || !InFromSpace(v)) return Status::OK();
  ++stats_.read_barrier_traps;
  SimSpan span(ctx_.clock);
  SHEAP_ASSIGN_OR_RETURN(HeapAddr nv, CopyObject(v));
  if (opts_.durability == GcDurability::kWriteAheadLog) {
    LogRecord rec;
    rec.type = RecordType::kGcScan;
    rec.aux = LogRecord::kScanPartial;
    rec.page = PageOf(slot_addr);
    rec.slot_updates.emplace_back(WordInPage(slot_addr), nv);
    const Lsn lsn = ctx_.log->Append(&rec);
    SHEAP_RETURN_IF_ERROR(ctx_.mem->WriteWordLogged(slot_addr, nv, lsn));
  } else {
    SHEAP_RETURN_IF_ERROR(ctx_.mem->WriteWordUnlogged(slot_addr, nv));
    DetlefsMark(slot_addr, kWordSizeBytes);
    SHEAP_RETURN_IF_ERROR(DetlefsFlushStep());
  }
  stats_.RecordPause(span.elapsed_ns());
  return Status::OK();
}

Status AtomicGc::SyncWriteRange(HeapAddr addr, uint64_t nbytes) {
  SHEAP_DCHECK(nbytes > 0);
  for (PageId p = PageOf(addr); p <= PageOf(addr + nbytes - 1); ++p) {
    Status st = ctx_.pool->WriteBack(p);
    if (!st.ok() && !st.IsNotFound()) return st;
    ++stats_.sync_page_writes;
  }
  return Status::OK();
}

void AtomicGc::DetlefsMark(HeapAddr addr, uint64_t nbytes) {
  for (PageId p = PageOf(addr); p <= PageOf(addr + nbytes - 1); ++p) {
    detlefs_dirty_.push_back(p);
  }
}

Status AtomicGc::DetlefsFlushStep() {
  std::sort(detlefs_dirty_.begin(), detlefs_dirty_.end());
  detlefs_dirty_.erase(
      std::unique(detlefs_dirty_.begin(), detlefs_dirty_.end()),
      detlefs_dirty_.end());
  for (PageId p : detlefs_dirty_) {
    Status st = ctx_.pool->WriteBack(p);
    if (!st.ok() && !st.IsNotFound()) return st;
    ++stats_.sync_page_writes;
  }
  detlefs_dirty_.clear();
  return Status::OK();
}

StatusOr<HeapAddr> AtomicGc::ResolveAndCopy(HeapAddr base) {
  if (!InFromSpace(base)) return base;
  return CopyObject(base);
}

StatusOr<HeapAddr> AtomicGc::CopyObject(HeapAddr from_base) {
  SHEAP_DCHECK(InFromSpace(from_base));
  SHEAP_ASSIGN_OR_RETURN(uint64_t w, ctx_.mem->ReadWord(from_base));
  if (IsForwardWord(w)) return ForwardTarget(w);
  if (!IsHeaderWord(w)) {
    return Status::Corruption("copy source is not an object");
  }
  const ObjectHeader hdr = DecodeHeader(w);
  const uint64_t total = hdr.TotalWords();
  const uint64_t nbytes = total * kWordSizeBytes;
  if (sem_.copy_ptr + nbytes > RoundDownToPage(sem_.alloc_ptr)) {
    return Status::OutOfSpace("to-space exhausted during copy");
  }
  const HeapAddr to_base = sem_.copy_ptr;

  if (opts_.durability == GcDurability::kWriteAheadLog) {
    // Copy step (§3.4.1): read contents, log the copy record, then perform
    // the to-space write and the from-space forwarding write under the
    // record's LSN. Redo is self-contained: the contents travel in the log.
    LogRecord rec;
    rec.type = RecordType::kGcCopy;
    rec.addr = from_base;
    rec.addr2 = to_base;
    rec.count = total;
    rec.contents.resize(nbytes);
    SHEAP_RETURN_IF_ERROR(
        ctx_.mem->ReadBytes(from_base, nbytes, rec.contents.data()));
    const Lsn lsn = ctx_.log->Append(&rec);
    SHEAP_RETURN_IF_ERROR(ctx_.mem->WriteBytesLogged(
        to_base, rec.contents.data(), nbytes, lsn));
    SHEAP_RETURN_IF_ERROR(
        ctx_.mem->WriteWordLogged(from_base, MakeForwardWord(to_base), lsn));
  } else {
    // Detlefs comparator: no logging; the step's consistency comes from
    // synchronous random writes of every page it touched.
    std::vector<uint8_t> bytes(nbytes);
    SHEAP_RETURN_IF_ERROR(
        ctx_.mem->ReadBytes(from_base, nbytes, bytes.data()));
    SHEAP_RETURN_IF_ERROR(
        ctx_.mem->WriteBytesUnlogged(to_base, bytes.data(), nbytes));
    SHEAP_RETURN_IF_ERROR(
        ctx_.mem->WriteWordUnlogged(from_base, MakeForwardWord(to_base)));
    DetlefsMark(to_base, nbytes);
    DetlefsMark(from_base, kWordSizeBytes);
  }

  sem_.copy_ptr += nbytes;
  UpdateLot(to_base, total);
  ++stats_.objects_copied;
  stats_.words_copied += total;
  ctx_.clock->ChargeCopyWords(total);

  // The lock is on the object, not the address.
  ctx_.locks->Rekey(from_base, to_base);
  if (on_object_moved) on_object_moved(from_base, to_base, total);
  return to_base;
}

StatusOr<HeapAddr> AtomicGc::AllocateForPromotion(uint64_t total_words,
                                                  bool page_isolated) {
  if (page_isolated != alloc_isolation_) {
    sem_.alloc_ptr = RoundDownToPage(sem_.alloc_ptr);
    alloc_isolation_ = page_isolated;
  }
  const uint64_t nbytes = total_words * kWordSizeBytes;
  if (nbytes > sem_.alloc_ptr ||
      RoundDownToPage(sem_.alloc_ptr - nbytes) <
          RoundUpToPage(sem_.copy_ptr)) {
    return Status::OutOfSpace("stable area exhausted during promotion");
  }
  const HeapAddr base = sem_.alloc_ptr - nbytes;
  sem_.alloc_ptr = base;
  MarkAllocPagesScanned(base, nbytes);
  return base;
}

void AtomicGc::UpdateLot(HeapAddr to_base, uint64_t total_words) {
  const Space* cur = CurrentSpace();
  const HeapAddr end = to_base + total_words * kWordSizeBytes;
  // The object covers the first word of every page whose start lies in
  // [to_base, end); record it as that page's walk anchor.
  for (HeapAddr p = RoundUpToPage(to_base); p < end; p += kPageSizeBytes) {
    lot_[(p - cur->base()) / kPageSizeBytes] = to_base;
  }
  if (to_base % kPageSizeBytes == 0) {
    lot_[PageIndexOf(to_base)] = to_base;
  }
}

StatusOr<uint64_t> AtomicGc::TranslateValue(uint64_t v, bool* changed) {
  *changed = false;
  if (v == kNullAddr || !InFromSpace(v)) return v;
  SHEAP_ASSIGN_OR_RETURN(HeapAddr nv, CopyObject(v));
  *changed = true;
  return nv;
}

void AtomicGc::HwProtectCurrentSpace() {
  if (ctx_.mapping == nullptr) return;
  const Space* cur = CurrentSpace();
  const PageId first = cur->base() / kPageSizeBytes;
  ctx_.mapping->Protect(first, cur->npages);
  const uint64_t cap = ctx_.mapping->capacity_pages();
  if (first < cap) {
    stats_.hw_pages_protected += std::min<uint64_t>(cur->npages, cap - first);
  }
}

void AtomicGc::HwUnprotectPages(uint64_t first_idx, uint64_t count) {
  if (ctx_.mapping == nullptr || count == 0) return;
  const PageId first = CurrentSpace()->base() / kPageSizeBytes + first_idx;
  ctx_.mapping->Unprotect(first, count);
}

void AtomicGc::HwSyncToBitmap() {
  if (ctx_.mapping == nullptr) return;
  const Space* cur = CurrentSpace();
  const PageId base = cur->base() / kPageSizeBytes;
  // Runs of equal bits become single mprotect calls.
  uint64_t i = 0;
  while (i < cur->npages) {
    const bool scanned = scanned_.Get(i);
    uint64_t j = i + 1;
    while (j < cur->npages && scanned_.Get(j) == scanned) ++j;
    if (scanned) {
      ctx_.mapping->Unprotect(base + i, j - i);
    } else {
      ctx_.mapping->Protect(base + i, j - i);
      const uint64_t cap = ctx_.mapping->capacity_pages();
      if (base + i < cap) {
        stats_.hw_pages_protected +=
            std::min<uint64_t>(j - i, cap - (base + i));
      }
    }
    i = j;
  }
}

Status AtomicGc::ScanPage(uint64_t idx, bool abandon_tail) {
  SHEAP_CHECK(sem_.collecting());
  SHEAP_CHECK(!scanned_.Get(idx));
  const Space* cur = CurrentSpace();
  const HeapAddr page_base = cur->base() + idx * kPageSizeBytes;
  const HeapAddr page_end = page_base + kPageSizeBytes;

  bool bumped = false;
  if (abandon_tail && sem_.copy_ptr > page_base &&
      sem_.copy_ptr < page_end) {
    // Trap path: the mutator needs this page now, so copies triggered by
    // this scan must not land on it — abandon the tail (the AEL waste).
    stats_.waste_words += (page_end - sem_.copy_ptr) / kWordSizeBytes;
    sem_.copy_ptr = page_end;
    bumped = true;
  }

  const HeapAddr anchor = lot_[idx];
  if (anchor == kNullAddr) {
    // No copied data covers this page (empty or allocation region).
    scanned_.Set(idx);
    HwUnprotectPages(idx, 1);
    return Status::OK();
  }

  std::vector<std::pair<uint32_t, uint64_t>> updates;
  HeapAddr obj = anchor;
  // Walk until the page ends or the scan catches the copy pointer. In the
  // background (no-bump) case the copy pointer may grow onto this very
  // page as the walk copies referents; re-reading it each iteration makes
  // this a per-page Cheney scan, so the page is complete when the loop
  // exits. The caller only no-bump-scans the frontier page when it is the
  // last unscanned one, so nothing can be copied here afterwards.
  while (obj < page_end && obj < sem_.copy_ptr) {
    SHEAP_ASSIGN_OR_RETURN(uint64_t w, ctx_.mem->ReadWord(obj));
    if (!IsHeaderWord(w)) break;  // abandoned tail of an earlier bump
    const ObjectHeader hdr = DecodeHeader(w);
    for (uint64_t i = 0; i < hdr.nslots; ++i) {
      const HeapAddr slot_addr = SlotAddr(obj, i);
      if (slot_addr < page_base) continue;
      if (slot_addr >= page_end) break;
      if (!ctx_.types->IsPointerSlot(hdr.class_id, i)) continue;
      SHEAP_ASSIGN_OR_RETURN(uint64_t v, ctx_.mem->ReadWord(slot_addr));
      bool changed;
      SHEAP_ASSIGN_OR_RETURN(uint64_t nv, TranslateValue(v, &changed));
      if (changed) {
        updates.emplace_back(WordInPage(slot_addr), nv);
      }
    }
    obj += hdr.TotalWords() * kWordSizeBytes;
  }

  if (opts_.durability == GcDurability::kWriteAheadLog) {
    // Scan step (§3.4.2): log the translations, then apply them under the
    // record's LSN. Redo re-applies; analysis re-marks the page scanned
    // (and replays the copy-pointer bump for trap scans).
    LogRecord rec;
    rec.type = RecordType::kGcScan;
    rec.aux = bumped ? LogRecord::kScanBumped : 0;
    rec.page = page_base / kPageSizeBytes;
    rec.slot_updates = updates;
    const Lsn lsn = ctx_.log->Append(&rec);
    for (const auto& [word, value] : updates) {
      SHEAP_RETURN_IF_ERROR(ctx_.mem->WriteWordLogged(
          page_base + static_cast<HeapAddr>(word) * kWordSizeBytes, value,
          lsn));
    }
  } else {
    for (const auto& [word, value] : updates) {
      SHEAP_RETURN_IF_ERROR(ctx_.mem->WriteWordUnlogged(
          page_base + static_cast<HeapAddr>(word) * kWordSizeBytes, value));
    }
    DetlefsMark(page_base, kPageSizeBytes);
    SHEAP_RETURN_IF_ERROR(DetlefsFlushStep());
  }
  scanned_.Set(idx);
  HwUnprotectPages(idx, 1);
  ++stats_.pages_scanned;
  ctx_.clock->ChargeScanWords(kWordsPerPage);
  return Status::OK();
}

Status AtomicGc::TranslateRootsAtFlip() {
  // 1. The distinguished root array.
  SHEAP_ASSIGN_OR_RETURN(root_object_, ResolveAndCopy(root_object_));
  LogRecord root_rec;
  root_rec.type = RecordType::kRootObject;
  root_rec.addr = root_object_;
  ctx_.log->Append(&root_rec);

  // 2. Mutator handles (registers/stacks/own variables, §3.2.1). Volatile
  //    roots: translated in memory only.
  Status handle_status = Status::OK();
  ctx_.handles->ForEachLive([&](HeapAddr* slot) {
    if (!handle_status.ok() || !InFromSpace(*slot)) return;
    auto copied = CopyObject(*slot);
    if (!copied.ok()) {
      handle_status = copied.status();
      return;
    }
    *slot = *copied;
  });
  SHEAP_RETURN_IF_ERROR(handle_status);

  // 3. Locked objects: the lock tables name objects by address; copying
  //    rekeys them (CopyObject calls LockManager::Rekey).
  for (HeapAddr a : ctx_.locks->LockedAddresses()) {
    if (InFromSpace(a)) {
      SHEAP_RETURN_IF_ERROR(CopyObject(a).status());
    }
  }

  // 4. Undo roots (§3.5.2, §4.2.1): every object named by active
  //    transactions' recovery information is copied now, its relocation
  //    logged as a UTR so crash recovery can translate undo addresses and
  //    undo pointer values. In-memory undo info is rewritten in place so
  //    normal abort needs no translation.
  std::vector<UtrEntry> utrs;
  std::unordered_set<HeapAddr> seen;
  std::vector<TxnId> active_ids;
  auto translate_object = [&](HeapAddr base) -> StatusOr<HeapAddr> {
    if (!InFromSpace(base)) return base;
    SHEAP_ASSIGN_OR_RETURN(uint64_t w, ctx_.mem->ReadWord(base));
    HeapAddr to;
    uint64_t total;
    if (IsForwardWord(w)) {
      to = ForwardTarget(w);
      SHEAP_ASSIGN_OR_RETURN(ObjectHeader hdr, ctx_.mem->ReadHeader(to));
      total = hdr.TotalWords();
    } else {
      const ObjectHeader hdr = DecodeHeader(w);
      total = hdr.TotalWords();
      SHEAP_ASSIGN_OR_RETURN(to, CopyObject(base));
    }
    if (seen.insert(base).second) {
      utrs.push_back(UtrEntry{base, to, total});
    }
    return to;
  };

  for (Txn* txn : ctx_.txns->ActiveTxns()) {
    active_ids.push_back(txn->id);
    for (TxnUpdate& e : txn->updates) {
      SHEAP_ASSIGN_OR_RETURN(e.obj_base, translate_object(e.obj_base));
      if (e.is_pointer) {
        if (InFromSpace(e.old_word)) {
          SHEAP_ASSIGN_OR_RETURN(e.old_word, translate_object(e.old_word));
        }
        if (InFromSpace(e.new_word)) {
          SHEAP_ASSIGN_OR_RETURN(e.new_word, translate_object(e.new_word));
        }
      }
    }
    for (TxnAlloc& a : txn->allocs) {
      if (InFromSpace(a.base)) {
        SHEAP_ASSIGN_OR_RETURN(a.base, translate_object(a.base));
      }
    }
  }

  if (!utrs.empty()) {
    LogRecord utr_rec;
    utr_rec.type = RecordType::kUtr;
    utr_rec.utr_entries = utrs;
    ctx_.log->Append(&utr_rec);
    // Crash window: undo roots copied (kGcCopy records ahead of this UTR
    // in the log) but the batched translation record may still be lost.
    SHEAP_FAULT_POINT(ctx_.log->faults(), "gc.utr.logged");
  }
  // The table also keeps batches alive until their transactions end even if
  // empty; skip empty batches.
  ctx_.utt->AddBatch(utrs, active_ids);

  // 5. External roots: the volatile area and any other caller state (§5.4).
  if (extra_roots) {
    SHEAP_RETURN_IF_ERROR(extra_roots(
        [this](HeapAddr v) -> StatusOr<HeapAddr> {
          if (!InFromSpace(v)) return v;
          return CopyObject(v);
        }));
  }
  return Status::OK();
}

Status AtomicGc::Flip() {
  // The flip rewrites every root in place; no mutator may be mid-action.
  SHEAP_DCHECK(gate_ == nullptr || gate_->ExclusiveHeldByCaller());
  if (sem_.collecting()) {
    return Status::InvalidArgument("collection already in progress");
  }
  if (before_flip) {
    SHEAP_RETURN_IF_ERROR(before_flip());
  }
  SimSpan span(ctx_.clock);
  ++stats_.collections_started;

  const Space* old = CurrentSpace();
  const uint64_t npages = std::max(opts_.space_pages, old->npages);
  SHEAP_ASSIGN_OR_RETURN(SpaceId to_id,
                         ctx_.spaces->Allocate(npages, Area::kStable));
  const Space* to = ctx_.spaces->Find(to_id);

  LogRecord rec;
  rec.type = RecordType::kGcFlip;
  rec.aux = static_cast<uint64_t>(Area::kStable);
  rec.addr = sem_.current;  // becomes from-space
  rec.addr2 = to_id;
  ctx_.log->Append(&rec);
  // Crash window: the flip record is spooled (possibly lost with the
  // buffer) and no root has been translated yet.
  SHEAP_FAULT_POINT(ctx_.log->faults(), "gc.flip.logged");

  sem_.from = sem_.current;
  sem_.current = to_id;
  sem_.copy_ptr = to->base();
  sem_.alloc_ptr = to->end();
  scanned_.Resize(to->npages);
  scanned_.ClearAll();  // every to-space page protected (Figure 3.2)
  HwProtectCurrentSpace();  // mirror the protection in the MMU
  rb_cache_.fill(UINT64_MAX);  // new space: every cached page is stale
  scan_cursor_ = 0;
  pacing_carry_bytes_ = 0;
  lot_.assign(to->npages, kNullAddr);

  SHEAP_RETURN_IF_ERROR(TranslateRootsAtFlip());
  // Crash window: roots copied and logged, background scan not started.
  SHEAP_FAULT_POINT(ctx_.log->faults(), "gc.flip.done");
  stats_.RecordPause(span.elapsed_ns());
  return Status::OK();
}

uint64_t AtomicGc::NextUnscannedPage() {
  // Prefer fully-copied pages (strictly below the copy frontier); return
  // the partially-filled frontier page only when it is the last unscanned
  // one, so the background scan can finish it Cheney-style without waste.
  const Space* cur = CurrentSpace();
  const uint64_t full_limit = (sem_.copy_ptr - cur->base()) / kPageSizeBytes;
  const uint64_t idx = scanned_.FindFirstUnset(scan_cursor_);
  stats_.scan_cursor_steps += (idx >> 6) - (scan_cursor_ >> 6) + 1;
  scan_cursor_ = idx;  // everything below the first unset bit is scanned
  if (idx < full_limit) return idx;
  if (sem_.copy_ptr % kPageSizeBytes != 0 && !scanned_.Get(full_limit) &&
      lot_[full_limit] != kNullAddr) {
    return full_limit;
  }
  return cur->npages;
}

uint64_t AtomicGc::PacingBudgetPages(uint64_t upcoming_alloc_bytes) {
  if (!sem_.collecting()) return 0;
  const Space* cur = CurrentSpace();
  const uint64_t full_limit = (sem_.copy_ptr - cur->base()) / kPageSizeBytes;
  // The cursor is a lower bound on scan progress, so this over-estimates
  // the remaining work — conservative in the safe direction.
  const uint64_t unscanned =
      full_limit > scan_cursor_ ? full_limit - scan_cursor_ : 0;
  const uint64_t free_pages =
      std::max<uint64_t>(sem_.free_bytes() / kPageSizeBytes, 1);
  // k pages scanned per page allocated, sized so the remaining scan
  // finishes with half the headroom to spare (safety factor 2), never
  // below Baker's minimum of 1.
  const uint64_t k = std::max<uint64_t>(
      1, (2 * unscanned + free_pages - 1) / free_pages);
  pacing_carry_bytes_ += upcoming_alloc_bytes * k;
  const uint64_t pages = pacing_carry_bytes_ / kPageSizeBytes;
  pacing_carry_bytes_ %= kPageSizeBytes;
  stats_.pacing_budget_pages += pages;
  return pages;
}

StatusOr<bool> AtomicGc::Step(uint64_t max_pages) {
  // Scan rounds copy objects and rewrite slots; handshake required.
  SHEAP_DCHECK(gate_ == nullptr || gate_->ExclusiveHeldByCaller());
  if (!sem_.collecting()) return false;
  SHEAP_FAULT_POINT(ctx_.log->faults(), "gc.step.begin");
  SimSpan span(ctx_.clock);
  if (opts_.durability == GcDurability::kWriteAheadLog) {
    // Executor rounds (parallel scan + batched records). Runs for every
    // thread count — including 1 — so the log bytes never depend on the
    // configured parallelism.
    uint64_t remaining = max_pages;
    while (remaining > 0 && sem_.collecting()) {
      uint64_t done = 0;
      SHEAP_RETURN_IF_ERROR(executor_->RunRound(remaining, &done));
      if (done == 0) {
        // No fully-copied page left: finish the frontier page Cheney-style
        // or complete the collection.
        const uint64_t idx = NextUnscannedPage();
        if (idx == CurrentSpace()->npages) {
          SHEAP_RETURN_IF_ERROR(Complete());
          break;
        }
        SHEAP_RETURN_IF_ERROR(ScanPage(idx, /*abandon_tail=*/false));
        --remaining;
        continue;
      }
      remaining -= std::min<uint64_t>(done, remaining);
    }
  } else {
    for (uint64_t i = 0; i < max_pages; ++i) {
      const uint64_t idx = NextUnscannedPage();
      if (idx == CurrentSpace()->npages) {
        SHEAP_RETURN_IF_ERROR(Complete());
        break;
      }
      SHEAP_RETURN_IF_ERROR(ScanPage(idx, /*abandon_tail=*/false));
    }
  }
  stats_.RecordPause(span.elapsed_ns());
  return sem_.collecting();
}

Status AtomicGc::Complete() {
  SHEAP_CHECK(sem_.collecting());
  if (before_complete) {
    SHEAP_RETURN_IF_ERROR(before_complete());
  }
  LogRecord rec;
  rec.type = RecordType::kGcComplete;
  rec.aux = static_cast<uint64_t>(Area::kStable);
  rec.addr = sem_.from;
  ctx_.log->Append(&rec);
  // Crash window: completion spooled but from-space not yet freed — losing
  // the record resumes the collection; keeping it must free the space.
  SHEAP_FAULT_POINT(ctx_.log->faults(), "gc.complete.logged");
  SHEAP_RETURN_IF_ERROR(ctx_.spaces->Free(sem_.from));
  sem_.from = kInvalidSpaceId;
  ++stats_.collections_completed;
  return Status::OK();
}

Status AtomicGc::FinishCollection() {
  while (sem_.collecting()) {
    SHEAP_RETURN_IF_ERROR(Step(16).status());
  }
  return Status::OK();
}

Status AtomicGc::CollectFully() {
  SHEAP_DCHECK(gate_ == nullptr || gate_->ExclusiveHeldByCaller());
  SimSpan span(ctx_.clock);
  if (!sem_.collecting()) {
    SHEAP_RETURN_IF_ERROR(Flip());
  }
  SHEAP_RETURN_IF_ERROR(FinishCollection());
  stats_.RecordPause(span.elapsed_ns());
  return Status::OK();
}

void AtomicGc::InstallRecovered(RecoveredState rs) {
  sem_ = rs.sem;
  root_object_ = rs.root_object;
  rb_cache_.fill(UINT64_MAX);
  scan_cursor_ = 0;
  pacing_carry_bytes_ = 0;
  const Space* cur = CurrentSpace();
  scanned_.Resize(cur->npages);
  if (sem_.collecting()) {
    for (uint64_t i = 0; i < cur->npages && i < rs.scanned.size(); ++i) {
      scanned_.Assign(i, rs.scanned[i] != 0);
    }
    // Allocation-region pages are born scanned; re-mark them (the scan
    // bitmap in the log/checkpoint only tracks scan records).
    for (HeapAddr a = sem_.alloc_ptr; a < cur->end(); a += kPageSizeBytes) {
      scanned_.Set(PageIndexOf(a));
    }
  } else {
    scanned_.SetAll();
  }
  lot_ = std::move(rs.lot);
  lot_.resize(cur->npages, kNullAddr);
  HwSyncToBitmap();
}

Status AtomicGc::ResumeAfterRecovery() {
  if (!sem_.collecting() || !InFromSpace(root_object_)) return Status::OK();
  SHEAP_ASSIGN_OR_RETURN(root_object_, CopyObject(root_object_));
  LogRecord rec;
  rec.type = RecordType::kRootObject;
  rec.addr = root_object_;
  ctx_.log->Append(&rec);
  return Status::OK();
}

void AtomicGc::EncodeTo(Encoder* enc) const {
  enc->PutVarint(sem_.current);
  enc->PutVarint(sem_.from);
  enc->PutVarint(sem_.copy_ptr);
  enc->PutVarint(sem_.alloc_ptr);
  enc->PutVarint(root_object_);
  enc->PutVarint(scanned_.size());
  for (size_t i = 0; i < scanned_.size(); ++i) {
    enc->PutU8(scanned_.Get(i) ? 1 : 0);
  }
  enc->PutVarint(lot_.size());
  for (HeapAddr a : lot_) enc->PutVarint(a);
}

Status AtomicGc::DecodeInto(Decoder* dec, RecoveredState* rs) {
  uint64_t current, from, nscanned, nlot;
  if (!dec->GetVarint(&current) || !dec->GetVarint(&from) ||
      !dec->GetVarint(&rs->sem.copy_ptr) ||
      !dec->GetVarint(&rs->sem.alloc_ptr) ||
      !dec->GetVarint(&rs->root_object) || !dec->GetVarint(&nscanned)) {
    return Status::Corruption("bad gc state");
  }
  rs->sem.current = static_cast<SpaceId>(current);
  rs->sem.from = static_cast<SpaceId>(from);
  rs->scanned.resize(nscanned);
  for (uint64_t i = 0; i < nscanned; ++i) {
    uint8_t b;
    if (!dec->GetU8(&b)) return Status::Corruption("bad scan bitmap");
    rs->scanned[i] = b;
  }
  if (!dec->GetVarint(&nlot)) return Status::Corruption("bad lot");
  rs->lot.resize(nlot);
  for (uint64_t i = 0; i < nlot; ++i) {
    if (!dec->GetVarint(&rs->lot[i])) return Status::Corruption("bad lot");
  }
  return Status::OK();
}

}  // namespace sheap
